package fl

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/parallel"
)

// Config describes a complete in-process FL experiment.
type Config struct {
	// Dataset names a registered dataset spec (internal/data.Registry).
	Dataset string
	// Records overrides the spec's default record count when > 0.
	Records int
	// Clients is the number of FL participants (paper: 5, or 10 for
	// Purchase100).
	Clients int
	// Rounds is the number of FL rounds.
	Rounds int
	// LocalEpochs is the number of local epochs per round (paper: 5, or 10
	// for Purchase100).
	LocalEpochs int
	// BatchSize is the local mini-batch size (paper: 64).
	BatchSize int
	// LearningRate is the client learning rate (paper: 1e-3; our scaled
	// models use larger rates, set per experiment).
	LearningRate float64
	// Optimizer names the client optimizer: sgd, adagrad, adam, adamax,
	// rmsprop, adgd. DINAR uses adagrad.
	Optimizer string
	// DirichletAlpha controls the non-IID partition; +Inf (or 0, the zero
	// value, treated as +Inf) means IID.
	DirichletAlpha float64
	// Participation is the fraction of clients selected each round in
	// (0, 1]; 0 (the zero value) means full participation, the paper's
	// setting.
	Participation float64
	// Seed makes the whole experiment deterministic.
	Seed int64
	// Parallel trains clients concurrently when true.
	Parallel bool
	// Aggregator selects the server-side aggregation rule ("fedavg",
	// "median", "trimmed-mean", "krum", "multi-krum", "norm-bound"); empty
	// means the defense's own rule (FedAvg for most defenses).
	Aggregator string
	// MaxByzantine is the assumed number of malicious clients f the robust
	// aggregator must tolerate (Krum family tolerance, trimmed-mean trim).
	MaxByzantine int
	// NoScreen disables the server's update screen. By default every
	// round's updates are validated (shape, NaN/Inf) and offenders are
	// quarantined before the defense aggregates.
	NoScreen bool
	// ClipNorms additionally enables the screen's delta-norm clipping
	// against a running median-of-norms bound.
	ClipNorms bool
}

// withDefaults fills unset fields with the paper's §5.3 defaults, scaled.
func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 5
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.01
	}
	if c.Optimizer == "" {
		c.Optimizer = "sgd"
	}
	if c.DirichletAlpha == 0 {
		c.DirichletAlpha = math.Inf(1)
	}
	if c.Participation == 0 {
		c.Participation = 1
	}
	return c
}

// System is an assembled in-process federation: one server, N clients, the
// shared defense, and the data splits needed for evaluation and attacks.
type System struct {
	Config  Config
	Server  *Server
	Clients []*Client
	Defense Defense
	Meter   *metrics.CostMeter

	// Split holds the attacker/train/test pools (paper §5.1 protocol).
	Split *data.FLSplit
	// Shards holds each client's training shard (aligned with Clients).
	Shards []*data.Dataset

	spec data.Spec
}

// NewSystem generates data, partitions it, builds per-client models, and
// wires the defense. The same Seed yields a bit-identical system.
func NewSystem(cfg Config, def Defense) (*System, error) {
	cfg = cfg.withDefaults()
	if def == nil {
		return nil, fmt.Errorf("fl: nil defense (use defense.None for the baseline)")
	}
	def, err := WithAggregator(def, cfg.Aggregator, cfg.MaxByzantine)
	if err != nil {
		return nil, err
	}
	spec, err := data.Lookup(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	if cfg.Records > 0 {
		spec.Records = cfg.Records
	}
	ds, err := data.Generate(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	split := data.NewFLSplit(ds, rng)

	var shards []*data.Dataset
	if math.IsInf(cfg.DirichletAlpha, 1) {
		shards, err = data.PartitionIID(split.Train, cfg.Clients, rng)
	} else {
		shards, err = data.PartitionDirichlet(split.Train, cfg.Clients, cfg.DirichletAlpha, rng)
	}
	if err != nil {
		return nil, fmt.Errorf("fl: partition: %w", err)
	}

	meter := metrics.NewCostMeter()
	clients := make([]*Client, cfg.Clients)
	var info ModelInfo
	var initState []float64
	var base *nn.Model
	for i := range clients {
		// Every client starts from the same initial model (identical seed),
		// so build it once and deep-clone for the rest: bit-identical
		// parameters, unshared layer workspaces.
		var m *nn.Model
		if i == 0 {
			m, err = model.Build(spec, rand.New(rand.NewSource(cfg.Seed+2)))
			if err != nil {
				return nil, fmt.Errorf("fl: build model: %w", err)
			}
			base = m
			info = InfoOf(m)
			initState = m.StateVector()
		} else {
			m = base.Clone()
		}
		opt := optim.New(cfg.Optimizer, cfg.LearningRate)
		if opt == nil {
			return nil, fmt.Errorf("fl: unknown optimizer %q", cfg.Optimizer)
		}
		c, err := NewClient(i, m, shards[i], opt, cfg.BatchSize, cfg.LocalEpochs,
			rand.New(rand.NewSource(cfg.Seed+100+int64(i))))
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}
	if err := def.Bind(info); err != nil {
		return nil, fmt.Errorf("fl: bind defense %q: %w", def.Name(), err)
	}
	// Wire the cost meter into defenses that account extra buffer memory
	// (Table 3's third metric).
	if metered, ok := def.(interface{ SetMeter(*metrics.CostMeter) }); ok {
		metered.SetMeter(meter)
	}
	server, err := NewServer(initState, def, meter)
	if err != nil {
		return nil, err
	}
	if !cfg.NoScreen {
		server.SetScreen(NewScreen(ScreenConfig{ClipNorms: cfg.ClipNorms}))
	}
	return &System{
		Config:  cfg,
		Server:  server,
		Clients: clients,
		Defense: def,
		Meter:   meter,
		Split:   split,
		Shards:  shards,
		spec:    spec,
	}, nil
}

// Spec returns the dataset spec the system was built with (after Records
// override).
func (s *System) Spec() data.Spec { return s.spec }

// selectClients returns the round's participating clients: all of them at
// full participation, otherwise a deterministic per-round sample of
// ceil(Participation·N) clients.
func (s *System) selectClients(round int) []*Client {
	n := len(s.Clients)
	if s.Config.Participation >= 1 {
		return s.Clients
	}
	k := int(math.Ceil(s.Config.Participation * float64(n)))
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(s.Config.Seed ^ int64(round+1)<<16 ^ 0x5e1ec7))
	perm := rng.Perm(n)
	selected := make([]*Client, k)
	for i := 0; i < k; i++ {
		selected[i] = s.Clients[perm[i]]
	}
	return selected
}

// RunRound executes one FL round across the round's selected clients and
// aggregates. It returns the round's client updates (post-defense, i.e.
// exactly what a server-side attacker observes).
func (s *System) RunRound(ctx context.Context) ([]*Update, error) {
	round := s.Server.Round()
	global := s.Server.GlobalState()
	participants := s.selectClients(round)
	updates := make([]*Update, len(participants))

	if s.Config.Parallel {
		// Clients train concurrently on the shared compute pool: the pool
		// bounds client-level concurrency at Workers(), and the matmul /
		// im2col fan-outs inside each client draw from the same token
		// bucket, so a 50-client round no longer schedules
		// 50×GOMAXPROCS compute goroutines. Errors land in an indexed
		// slice and the lowest-index one wins, deterministically.
		errs := make([]error, len(participants))
		parallel.For(len(participants), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				updates[i], errs[i] = participants[i].RunRound(round, global, s.Defense, s.Meter)
			}
		})
		if err := firstError(errs); err != nil {
			return nil, err
		}
	} else {
		for i, c := range participants {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			u, err := c.RunRound(round, global, s.Defense, s.Meter)
			if err != nil {
				return nil, err
			}
			updates[i] = u
		}
	}
	if err := s.Server.Aggregate(updates); err != nil {
		return nil, err
	}
	return updates, nil
}

// Run executes cfg.Rounds rounds and returns the updates of the final round.
func (s *System) Run(ctx context.Context) ([]*Update, error) {
	var last []*Update
	for r := 0; r < s.Config.Rounds; r++ {
		updates, err := s.RunRound(ctx)
		if err != nil {
			return nil, err
		}
		last = updates
	}
	return last, nil
}

// firstError returns the lowest-index non-nil error of an indexed error
// slice — the deterministic "first error wins" rule shared by the
// pool-parallel client loops.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// FinalizeClients delivers the final global model to every client through the
// defense's download path (so DINAR clients end personalized), leaving each
// client's model in its prediction-ready state. Call after Run and before
// evaluating client utility. Clients are finalized concurrently on the
// shared compute pool; on failure the lowest-index error is returned.
func (s *System) FinalizeClients() error {
	round := s.Server.Round()
	global := s.Server.GlobalState()
	errs := make([]error, len(s.Clients))
	parallel.For(len(s.Clients), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := s.Clients[i]
			state := s.Defense.OnGlobalModel(c.ID, round, global)
			errs[i] = c.Install(state)
		}
	})
	return firstError(errs)
}

// MeanClientAccuracy evaluates every client's personalized model on ds and
// returns the average accuracy — the paper's "overall model utility metric"
// (Appendix A). Clients are evaluated concurrently on the shared compute
// pool; per-client accuracies land in an indexed slice and are summed in
// client order, so the result is bit-identical to the serial loop, and on
// failure the lowest-index error is returned.
func (s *System) MeanClientAccuracy(ds *data.Dataset) (float64, error) {
	accs := make([]float64, len(s.Clients))
	errs := make([]error, len(s.Clients))
	parallel.For(len(s.Clients), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			accs[i], _, errs[i] = s.Clients[i].Evaluate(ds)
		}
	})
	if err := firstError(errs); err != nil {
		return 0, err
	}
	sum := 0.0
	for _, acc := range accs {
		sum += acc
	}
	return sum / float64(len(s.Clients)), nil
}
