package fl

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Server is the FL aggregation server. It owns the global model state vector
// and applies the defense's server-side aggregation rule each round.
type Server struct {
	state []float64
	def   Defense
	meter *metrics.CostMeter
	round int

	screen        *Screen
	screenReports []ScreenReport
	lastTiming    AggTiming
}

// AggTiming is the phase breakdown of one Aggregate call.
type AggTiming struct {
	// Screen is the update-screen duration (zero without a screen).
	Screen time.Duration
	// Aggregate is the defense's aggregation-rule duration.
	Aggregate time.Duration
}

// NewServer returns a server whose initial global state is a copy of initial.
// meter may be nil.
func NewServer(initial []float64, def Defense, meter *metrics.CostMeter) (*Server, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("fl: server needs a non-empty initial state")
	}
	if def == nil {
		return nil, fmt.Errorf("fl: server needs a defense (use defense.None for the baseline)")
	}
	return &Server{
		state: append([]float64(nil), initial...),
		def:   def,
		meter: meter,
	}, nil
}

// GlobalState returns a copy of the current global model state.
func (s *Server) GlobalState() []float64 {
	return append([]float64(nil), s.state...)
}

// Round returns the number of completed aggregation rounds.
func (s *Server) Round() int { return s.round }

// SetRound moves the round counter, so a federation resumed from a
// checkpoint continues numbering where the snapshot left off (defenses
// receive the true round index in their hooks). Negative values are
// clamped to 0.
func (s *Server) SetRound(r int) {
	if r < 0 {
		r = 0
	}
	s.round = r
}

// SetScreen installs an update screen (validator + quarantine tracker)
// that every round's updates pass through before the defense aggregates.
// A nil screen disables screening.
func (s *Server) SetScreen(sc *Screen) { s.screen = sc }

// Screen returns the installed update screen (nil when screening is off).
func (s *Server) Screen() *Screen { return s.screen }

// ScreenReports returns a copy of the per-round screening reports recorded
// so far (empty without a screen).
func (s *Server) ScreenReports() []ScreenReport {
	return append([]ScreenReport(nil), s.screenReports...)
}

// LastScreenReport returns the most recent round's screening report.
func (s *Server) LastScreenReport() (ScreenReport, bool) {
	if len(s.screenReports) == 0 {
		return ScreenReport{}, false
	}
	return s.screenReports[len(s.screenReports)-1], true
}

// Aggregate folds the round's client updates into a new global state via the
// defense's aggregation rule and advances the round counter. Every update's
// state length is validated against the server state before the defense
// runs: without a screen a mismatch fails the round; with one, mismatched
// (or poisoned) updates are screened out and only the survivors aggregate.
func (s *Server) Aggregate(updates []*Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("fl: round %d received no updates", s.round)
	}
	s.lastTiming = AggTiming{}
	if s.screen != nil {
		screenStart := time.Now()
		kept, report := s.screen.Apply(s.round, s.state, updates)
		s.lastTiming.Screen = time.Since(screenStart)
		telScreenSeconds.Observe(s.lastTiming.Screen.Seconds())
		s.screenReports = append(s.screenReports, report)
		if len(kept) == 0 {
			return fmt.Errorf("fl: round %d: no updates survived screening (%d rejected, %d quarantined)",
				s.round, len(report.Rejected), len(report.Quarantined))
		}
		updates = kept
	} else {
		for _, u := range updates {
			if len(u.State) != len(s.state) {
				return fmt.Errorf("fl: round %d update from client %d has %d values, want %d",
					s.round, u.ClientID, len(u.State), len(s.state))
			}
		}
	}
	start := time.Now()
	next, err := s.def.Aggregate(s.round, s.state, updates)
	if err != nil {
		return fmt.Errorf("fl: round %d aggregate: %w", s.round, err)
	}
	if len(next) != len(s.state) {
		return fmt.Errorf("fl: defense %q returned %d values, want %d", s.def.Name(), len(next), len(s.state))
	}
	s.lastTiming.Aggregate = time.Since(start)
	telAggregateSeconds.Observe(s.lastTiming.Aggregate.Seconds())
	telRoundsAggregated.Inc()
	if s.meter != nil {
		s.meter.AddServerAgg(s.lastTiming.Aggregate)
		s.meter.SamplePhase(metrics.PhaseAggregate)
	}
	s.state = next
	s.round++
	return nil
}

// LastAggTiming returns the phase breakdown of the most recent Aggregate
// call (screening vs the defense's aggregation rule).
func (s *Server) LastAggTiming() AggTiming { return s.lastTiming }
