package fl

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Server is the FL aggregation server. It owns the global model state vector
// and applies the defense's server-side aggregation rule each round.
type Server struct {
	state []float64
	def   Defense
	meter *metrics.CostMeter
	tel   *Metrics
	round int

	screen        *Screen
	screenReports []ScreenReport
	lastTiming    AggTiming

	// Streaming round state (BeginRound/Offer/FinishRound).
	streaming       bool
	streamAgg       StreamingAggregator
	streamReport    ScreenReport
	streamScreenDur time.Duration
	streamFoldDur   time.Duration
	streamCount     int
}

// AggTiming is the phase breakdown of one Aggregate call.
type AggTiming struct {
	// Screen is the update-screen duration (zero without a screen).
	Screen time.Duration
	// Aggregate is the defense's aggregation-rule duration.
	Aggregate time.Duration
}

// NewServer returns a server whose initial global state is a copy of initial.
// meter may be nil.
func NewServer(initial []float64, def Defense, meter *metrics.CostMeter) (*Server, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("fl: server needs a non-empty initial state")
	}
	if def == nil {
		return nil, fmt.Errorf("fl: server needs a defense (use defense.None for the baseline)")
	}
	return &Server{
		state: append([]float64(nil), initial...),
		def:   def,
		meter: meter,
		tel:   defaultMetrics,
	}, nil
}

// SetMetrics points the server's instruments at m — service mode gives
// each federation job its own bundle so concurrent jobs never merge
// counters. nil restores the process-wide default bundle.
func (s *Server) SetMetrics(m *Metrics) {
	if m == nil {
		m = defaultMetrics
	}
	s.tel = m
}

// GlobalState returns a copy of the current global model state.
func (s *Server) GlobalState() []float64 {
	return append([]float64(nil), s.state...)
}

// Round returns the number of completed aggregation rounds.
func (s *Server) Round() int { return s.round }

// SetRound moves the round counter, so a federation resumed from a
// checkpoint continues numbering where the snapshot left off (defenses
// receive the true round index in their hooks). Negative values are
// clamped to 0.
func (s *Server) SetRound(r int) {
	if r < 0 {
		r = 0
	}
	s.round = r
}

// SetScreen installs an update screen (validator + quarantine tracker)
// that every round's updates pass through before the defense aggregates.
// A nil screen disables screening.
func (s *Server) SetScreen(sc *Screen) { s.screen = sc }

// Screen returns the installed update screen (nil when screening is off).
func (s *Server) Screen() *Screen { return s.screen }

// ScreenReports returns a copy of the per-round screening reports recorded
// so far (empty without a screen).
func (s *Server) ScreenReports() []ScreenReport {
	return append([]ScreenReport(nil), s.screenReports...)
}

// LastScreenReport returns the most recent round's screening report.
func (s *Server) LastScreenReport() (ScreenReport, bool) {
	if len(s.screenReports) == 0 {
		return ScreenReport{}, false
	}
	return s.screenReports[len(s.screenReports)-1], true
}

// Aggregate folds the round's client updates into a new global state via the
// defense's aggregation rule and advances the round counter. Every update's
// state length is validated against the server state before the defense
// runs: without a screen a mismatch fails the round; with one, mismatched
// (or poisoned) updates are screened out and only the survivors aggregate.
func (s *Server) Aggregate(updates []*Update) error {
	if len(updates) == 0 {
		return fmt.Errorf("fl: round %d received no updates", s.round)
	}
	payloadBytes := 0
	for _, u := range updates {
		payloadBytes += 8 * len(u.State)
	}
	s.tel.AggUpdateBytesPeak.SetMax(int64(payloadBytes))
	s.lastTiming = AggTiming{}
	if s.screen != nil {
		screenStart := time.Now()
		kept, report := s.screen.Apply(s.round, s.state, updates)
		s.lastTiming.Screen = time.Since(screenStart)
		s.tel.ScreenSeconds.Observe(s.lastTiming.Screen.Seconds())
		s.screenReports = append(s.screenReports, report)
		if len(kept) == 0 {
			return fmt.Errorf("fl: round %d: no updates survived screening (%d rejected, %d quarantined)",
				s.round, len(report.Rejected), len(report.Quarantined))
		}
		updates = kept
	} else {
		for _, u := range updates {
			if len(u.State) != len(s.state) {
				return fmt.Errorf("fl: round %d update from client %d has %d values, want %d",
					s.round, u.ClientID, len(u.State), len(s.state))
			}
		}
	}
	start := time.Now()
	next, err := s.def.Aggregate(s.round, s.state, updates)
	if err != nil {
		return fmt.Errorf("fl: round %d aggregate: %w", s.round, err)
	}
	if len(next) != len(s.state) {
		return fmt.Errorf("fl: defense %q returned %d values, want %d", s.def.Name(), len(next), len(s.state))
	}
	s.lastTiming.Aggregate = time.Since(start)
	s.tel.AggregateSeconds.Observe(s.lastTiming.Aggregate.Seconds())
	s.tel.RoundsAggregated.Inc()
	if s.meter != nil {
		s.meter.AddServerAgg(s.lastTiming.Aggregate)
		s.meter.SamplePhase(metrics.PhaseAggregate)
	}
	s.state = next
	s.round++
	return nil
}

// LastAggTiming returns the phase breakdown of the most recent Aggregate
// call (screening vs the defense's aggregation rule).
func (s *Server) LastAggTiming() AggTiming { return s.lastTiming }

// OfferVerdict is the per-arrival outcome of a streamed update.
type OfferVerdict int

// Offer verdicts.
const (
	// OfferAccepted: the update was folded into the running aggregate.
	OfferAccepted OfferVerdict = iota
	// OfferClipped: folded after the screen norm-clipped its delta.
	OfferClipped
	// OfferRejected: the screen rejected the update (not folded); the
	// caller should evict the sender like the materialized path does.
	OfferRejected
	// OfferQuarantined: dropped because the sender is serving a quarantine
	// penalty (not folded, sender not evicted).
	OfferQuarantined
)

// String implements fmt.Stringer.
func (v OfferVerdict) String() string {
	switch v {
	case OfferAccepted:
		return "accepted"
	case OfferClipped:
		return "clipped"
	case OfferRejected:
		return "rejected"
	case OfferQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// BeginRound arms the streaming aggregation path for the current round:
// updates are then screened and folded one at a time via Offer — their
// buffers releasable immediately after — and FinishRound finalizes the
// accumulator into the next global state. Memory stays O(model) instead of
// O(clients × model). The round counter does not advance until FinishRound.
func (s *Server) BeginRound(agg StreamingAggregator) error {
	if agg == nil {
		return fmt.Errorf("fl: BeginRound with nil aggregator")
	}
	if s.streaming {
		return fmt.Errorf("fl: BeginRound while round %d is still streaming", s.round)
	}
	s.streaming = true
	s.streamAgg = agg
	s.streamReport = ScreenReport{Round: s.round}
	s.streamScreenDur, s.streamFoldDur = 0, 0
	s.streamCount = 0
	agg.Begin(s.round, s.state)
	return nil
}

// Offer screens one arriving update and folds it into the streaming round.
// The verdict mirrors the materialized screen's per-update outcome; the
// update's State buffer is never retained, so the caller may release it as
// soon as Offer returns. A non-nil error means the update was structurally
// incompatible (or the fold itself failed) — the caller decides whether
// that fails the round or just the sender.
func (s *Server) Offer(u *Update) (OfferVerdict, error) {
	if !s.streaming {
		return OfferRejected, fmt.Errorf("fl: Offer without BeginRound")
	}
	if u == nil {
		return OfferRejected, fmt.Errorf("fl: Offer of nil update")
	}
	su := u
	verdict := OfferAccepted
	if s.screen != nil {
		start := time.Now()
		quarBefore, clipBefore := len(s.streamReport.Quarantined), len(s.streamReport.Clipped)
		screened, ok := s.screen.ApplyOne(&s.streamReport, s.round, s.state, u)
		s.streamScreenDur += time.Since(start)
		if !ok {
			if len(s.streamReport.Quarantined) > quarBefore {
				return OfferQuarantined, nil
			}
			return OfferRejected, nil
		}
		if len(s.streamReport.Clipped) > clipBefore {
			verdict = OfferClipped
		}
		su = screened
	} else if len(u.State) != len(s.state) {
		return OfferRejected, fmt.Errorf("fl: round %d update from client %d has %d values, want %d",
			s.round, u.ClientID, len(u.State), len(s.state))
	}
	peak := 8 * len(su.State)
	if mb, ok := s.streamAgg.(interface{ MemoryBytes() int }); ok {
		peak += mb.MemoryBytes()
	}
	s.tel.AggUpdateBytesPeak.SetMax(int64(peak))
	start := time.Now()
	err := s.streamAgg.Fold(su)
	s.streamFoldDur += time.Since(start)
	if err != nil {
		return OfferRejected, fmt.Errorf("fl: round %d fold: %w", s.round, err)
	}
	s.streamCount++
	return verdict, nil
}

// StreamCount returns how many updates the streaming round has folded.
func (s *Server) StreamCount() int { return s.streamCount }

// FinishRound finalizes the streaming round: the accumulator becomes the
// next global state and the round counter advances, exactly like a
// successful materialized Aggregate.
func (s *Server) FinishRound() error {
	if !s.streaming {
		return fmt.Errorf("fl: FinishRound without BeginRound")
	}
	s.streaming = false
	s.lastTiming = AggTiming{Screen: s.streamScreenDur}
	if s.screen != nil {
		s.tel.ScreenSeconds.Observe(s.streamScreenDur.Seconds())
		s.screenReports = append(s.screenReports, s.streamReport)
	}
	if s.streamCount == 0 {
		if s.screen != nil && len(s.streamReport.Rejected)+len(s.streamReport.Quarantined) > 0 {
			return fmt.Errorf("fl: round %d: no updates survived screening (%d rejected, %d quarantined)",
				s.round, len(s.streamReport.Rejected), len(s.streamReport.Quarantined))
		}
		return fmt.Errorf("fl: round %d received no updates", s.round)
	}
	start := time.Now()
	next, err := s.streamAgg.Finalize()
	if err != nil {
		return fmt.Errorf("fl: round %d aggregate: %w", s.round, err)
	}
	if len(next) != len(s.state) {
		return fmt.Errorf("fl: defense %q returned %d values, want %d", s.def.Name(), len(next), len(s.state))
	}
	s.lastTiming.Aggregate = s.streamFoldDur + time.Since(start)
	s.tel.AggregateSeconds.Observe(s.lastTiming.Aggregate.Seconds())
	s.tel.RoundsAggregated.Inc()
	if s.meter != nil {
		s.meter.AddServerAgg(s.lastTiming.Aggregate)
		s.meter.SamplePhase(metrics.PhaseAggregate)
	}
	s.state = next
	s.round++
	return nil
}

// AbortRound discards an armed streaming round (quorum failure, drain)
// without touching the global state or round counter. Screen offenses
// booked during the round stick — an offense is an offense even if the
// round never finalizes.
func (s *Server) AbortRound() {
	s.streaming = false
	s.streamCount = 0
}
