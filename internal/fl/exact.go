package fl

import (
	"math"
	"math/bits"
)

// Exact fixed-point accumulation.
//
// The streaming aggregation path folds updates in arrival order while the
// materialized path processes them sorted by client id; float64 addition is
// not associative, so accumulating in floating point would let the two
// paths drift by rounding. Instead every contribution is converted exactly
// to a signed 128-bit fixed-point integer (60 fractional bits) and summed
// with integer carries. Integer addition is commutative and associative, so
// any fold order — arrival order, sorted order, or a crash/resume split —
// produces bit-identical accumulator state, and the single rounding step
// happens once at finalize time. This is what makes streaming FedAvg
// bit-identical to materialized FedAvg at the same seed.
//
// Representable contributions are |c| < 2^40 (ample for model coordinates
// scaled by sample counts); anything larger, or non-finite, permanently
// poisons the coordinate, which finalizes to NaN — mirroring how a float
// sum would be destroyed by an Inf/NaN term. The 2^40 bound guarantees the
// 128-bit accumulator cannot overflow for up to 2^24 (≈16.7M) folds.
// Magnitudes below 2^-60 truncate toward zero, far beneath float64's own
// resolution near the finalized values.

const (
	// fixFracBits is the number of fractional bits in the fixed-point
	// representation.
	fixFracBits = 60
	// fixMaxMag bounds one contribution's magnitude; at or above it the
	// coordinate is poisoned instead of accumulated.
	fixMaxMag = float64(1 << 40)
)

// fixAcc is one exact accumulator cell: a two's-complement 128-bit integer
// held as two uint64 limbs, representing value × 2^60.
type fixAcc struct{ hi, lo uint64 }

// add folds one fixed-point term into the cell with a carry chain.
func (a *fixAcc) add(hi, lo uint64) {
	var c uint64
	a.lo, c = bits.Add64(a.lo, lo, 0)
	a.hi, _ = bits.Add64(a.hi, hi, c)
}

// addFloat converts c to fixed point and folds it in; it reports false
// (folding nothing) when c is not representable.
func (a *fixAcc) addFloat(c float64) bool {
	hi, lo, ok := fixFromFloat(c)
	if !ok {
		return false
	}
	a.add(hi, lo)
	return true
}

// fixFromFloat converts c to the two's-complement 128-bit fixed-point
// representation of trunc(c·2^60). ok is false for NaN, ±Inf, and
// |c| ≥ 2^40. The conversion is exact for every representable input except
// the deterministic truncation of bits below 2^-60.
func fixFromFloat(c float64) (hi, lo uint64, ok bool) {
	if c == 0 {
		return 0, 0, true
	}
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return 0, 0, false
	}
	neg := c < 0
	if neg {
		c = -c
	}
	if c >= fixMaxMag {
		return 0, 0, false
	}
	fr, exp := math.Frexp(c)    // c = fr·2^exp, fr ∈ [0.5, 1)
	m := uint64(fr * (1 << 53)) // 53-bit integer mantissa, exact
	// c·2^60 = m · 2^(exp−53+60)
	shift := exp - 53 + fixFracBits
	switch {
	case shift <= -64:
		m = 0
	case shift < 0:
		m >>= uint(-shift) // truncate toward zero
	}
	if shift <= 0 {
		lo, hi = m, 0
	} else {
		// exp ≤ 40 ⇒ shift ≤ 47, so m·2^shift < 2^100 fits the two limbs.
		lo = m << uint(shift)
		hi = m >> uint(64-shift)
	}
	if neg {
		hi, lo = neg128(hi, lo)
	}
	return hi, lo, true
}

// neg128 returns the two's-complement negation of (hi, lo).
func neg128(hi, lo uint64) (uint64, uint64) {
	lo = ^lo + 1
	hi = ^hi
	if lo == 0 {
		hi++
	}
	return hi, lo
}

// float converts the accumulated value back to float64. The two limbs are
// rounded independently and summed — a deterministic function of the
// accumulator bits, within 1 ulp of the true quotient-free value.
func (a fixAcc) float() float64 {
	hi, lo := a.hi, a.lo
	neg := hi>>63 != 0
	if neg {
		hi, lo = neg128(hi, lo)
	}
	v := math.Ldexp(float64(hi), 64-fixFracBits) + math.Ldexp(float64(lo), -fixFracBits)
	if neg {
		v = -v
	}
	return v
}

// isZero reports whether the cell holds exactly zero.
func (a fixAcc) isZero() bool { return a.hi == 0 && a.lo == 0 }

// exactVec is an exact accumulator over a state vector: one fixAcc per
// coordinate plus a sticky poison flag for unrepresentable contributions.
// Memory is O(model) — 17 bytes per coordinate — independent of how many
// updates fold into it.
type exactVec struct {
	acc []fixAcc
	bad []bool
}

// newExactVec returns an accumulator for n-coordinate states.
func newExactVec(n int) *exactVec {
	return &exactVec{acc: make([]fixAcc, n), bad: make([]bool, n)}
}

// reset zeroes the accumulator for reuse.
func (v *exactVec) reset(n int) {
	if cap(v.acc) < n {
		v.acc = make([]fixAcc, n)
		v.bad = make([]bool, n)
		return
	}
	v.acc = v.acc[:n]
	v.bad = v.bad[:n]
	for i := range v.acc {
		v.acc[i] = fixAcc{}
		v.bad[i] = false
	}
}

// addScaled folds state[i]·scale into every coordinate. len(state) must
// equal the accumulator length (callers validate).
func (v *exactVec) addScaled(state []float64, scale float64) {
	for i, x := range state {
		if !v.acc[i].addFloat(x * scale) {
			v.bad[i] = true
		}
	}
}

// finalize writes the accumulated values divided by div into out (out must
// have the accumulator length). Poisoned coordinates finalize to NaN.
func (v *exactVec) finalize(div float64, out []float64) {
	for i := range out {
		if v.bad[i] {
			out[i] = math.NaN()
			continue
		}
		out[i] = v.acc[i].float() / div
	}
}

// bytes reports the accumulator's memory footprint, for the aggregation
// peak-memory gauge.
func (v *exactVec) bytes() int { return len(v.acc)*16 + len(v.bad) }
