package fl

import (
	"fmt"
	"math"
	"sort"
)

// Robust aggregation rules. DINAR's initialization already assumes Byzantine
// participants (§4.1); these aggregators extend the same assumption to the
// learning rounds: a minority of corrupted clients cannot hijack the global
// model through crafted updates. They compose with any client-side defense.

// finiteColumn gathers coordinate i of every update, skipping NaN/Inf
// values: sort.Float64s misorders NaN (it compares false against
// everything), so a single NaN coordinate would silently corrupt the
// median/trim order instead of being out-voted like a finite outlier.
func finiteColumn(column []float64, updates []*Update, i int) []float64 {
	column = column[:0]
	for _, u := range updates {
		if v := u.State[i]; !math.IsNaN(v) && !math.IsInf(v, 0) {
			column = append(column, v)
		}
	}
	return column
}

// Median computes the coordinate-wise median of the updates' state vectors.
// It tolerates up to ⌈N/2⌉−1 arbitrarily corrupted updates per coordinate;
// non-finite coordinates are filtered out before ordering. A coordinate with
// no finite value at all is an error.
func Median(updates []*Update) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: median of zero updates")
	}
	n := len(updates[0].State)
	for _, u := range updates {
		if len(u.State) != n {
			return nil, fmt.Errorf("fl: update from client %d has %d values, want %d", u.ClientID, len(u.State), n)
		}
	}
	out := make([]float64, n)
	column := make([]float64, 0, len(updates))
	for i := 0; i < n; i++ {
		column = finiteColumn(column, updates, i)
		if len(column) == 0 {
			return nil, fmt.Errorf("fl: median: coordinate %d has no finite value across %d updates", i, len(updates))
		}
		sort.Float64s(column)
		mid := len(column) / 2
		if len(column)%2 == 1 {
			out[i] = column[mid]
		} else {
			out[i] = (column[mid-1] + column[mid]) / 2
		}
	}
	return out, nil
}

// TrimmedMean computes the coordinate-wise mean after discarding the trim
// smallest and trim largest values per coordinate. It requires
// 2·trim < len(updates).
func TrimmedMean(updates []*Update, trim int) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: trimmed mean of zero updates")
	}
	if trim < 0 || 2*trim >= len(updates) {
		return nil, fmt.Errorf("fl: trim %d with %d updates", trim, len(updates))
	}
	n := len(updates[0].State)
	for _, u := range updates {
		if len(u.State) != n {
			return nil, fmt.Errorf("fl: update from client %d has %d values, want %d", u.ClientID, len(u.State), n)
		}
	}
	out := make([]float64, n)
	column := make([]float64, 0, len(updates))
	for i := 0; i < n; i++ {
		column = finiteColumn(column, updates, i)
		if 2*trim >= len(column) {
			return nil, fmt.Errorf("fl: trimmed mean: coordinate %d has %d finite values, need > %d for trim %d",
				i, len(column), 2*trim, trim)
		}
		sort.Float64s(column)
		s := 0.0
		for _, v := range column[trim : len(column)-trim] {
			s += v
		}
		out[i] = s / float64(len(column)-2*trim)
	}
	return out, nil
}

// RobustRule selects a robust aggregation rule.
type RobustRule int

// Supported robust rules.
const (
	RuleMedian RobustRule = iota + 1
	RuleTrimmedMean
	RuleKrum
	RuleMultiKrum
	RuleNormBound
)

// RobustDefense wraps any defense, replacing its server-side aggregation
// with a Byzantine-robust rule while keeping the client-side hooks (DINAR's
// personalization/obfuscation, DP noise, ...) untouched.
type RobustDefense struct {
	// Inner is the wrapped defense.
	Inner Defense
	// Rule selects the aggregation rule (default RuleMedian).
	Rule RobustRule
	// Trim is the per-side trim count for RuleTrimmedMean.
	Trim int
	// F is the assumed number of Byzantine clients for the Krum family.
	F int
	// M is the selection count for RuleMultiKrum (≤ 0 selects the maximum
	// n−F−2).
	M int
	// NormMultiple scales RuleNormBound's clip bound relative to the round's
	// median delta norm (≤ 0 means 1).
	NormMultiple float64
}

var _ Defense = (*RobustDefense)(nil)

// NewRobust wraps a defense with coordinate-wise-median aggregation.
func NewRobust(inner Defense) *RobustDefense {
	return &RobustDefense{Inner: inner, Rule: RuleMedian}
}

// Name implements Defense.
func (r *RobustDefense) Name() string { return r.Inner.Name() + "+robust" }

// Bind implements Defense.
func (r *RobustDefense) Bind(info ModelInfo) error { return r.Inner.Bind(info) }

// OnGlobalModel implements Defense.
func (r *RobustDefense) OnGlobalModel(clientID, round int, global []float64) []float64 {
	return r.Inner.OnGlobalModel(clientID, round, global)
}

// BeforeUpload implements Defense.
func (r *RobustDefense) BeforeUpload(round int, global []float64, u *Update) {
	r.Inner.BeforeUpload(round, global, u)
}

// Aggregate implements Defense with the robust rule.
func (r *RobustDefense) Aggregate(_ int, prevGlobal []float64, updates []*Update) ([]float64, error) {
	switch r.Rule {
	case RuleTrimmedMean:
		return TrimmedMean(updates, r.Trim)
	case RuleKrum:
		return Krum(updates, r.F)
	case RuleMultiKrum:
		return MultiKrum(updates, r.F, r.M)
	case RuleNormBound:
		return NormBoundedFedAvg(prevGlobal, updates, r.NormMultiple)
	default:
		return Median(updates)
	}
}

// StreamingAggregator implements StreamingCapable: the norm-bound rule can
// clip and fold each update as it arrives (against a trailing-window bound
// — see StreamingNormBound for how its calibration differs from the
// materialized same-round median), while the median, trimmed-mean, and
// Krum-family rules order or score the whole cohort at once and so declare
// themselves non-streaming (nil) — the server falls back to materialized
// aggregation with a telemetry warning.
func (r *RobustDefense) StreamingAggregator() StreamingAggregator {
	if r.Rule == RuleNormBound {
		return NewStreamingNormBound(r.NormMultiple)
	}
	return nil
}

// AggregatorNames lists the selectable server-side aggregation rules in the
// order the -aggregator flag documents them.
var AggregatorNames = []string{"fedavg", "median", "trimmed-mean", "krum", "multi-krum", "norm-bound"}

// WithAggregator wraps def so its server-side aggregation uses the named
// rule, keeping the client-side hooks untouched. f is the assumed number of
// Byzantine clients: it sets the per-side trim count for "trimmed-mean" and
// the tolerance of the Krum family. "fedavg" (or "") returns def unchanged —
// the defense's own aggregation rule applies.
func WithAggregator(def Defense, name string, f int) (Defense, error) {
	if f < 0 {
		return nil, fmt.Errorf("fl: negative Byzantine count %d", f)
	}
	switch name {
	case "", "fedavg":
		return def, nil
	case "median":
		return &RobustDefense{Inner: def, Rule: RuleMedian}, nil
	case "trimmed-mean":
		trim := f
		if trim == 0 {
			trim = 1
		}
		return &RobustDefense{Inner: def, Rule: RuleTrimmedMean, Trim: trim}, nil
	case "krum":
		return &RobustDefense{Inner: def, Rule: RuleKrum, F: f}, nil
	case "multi-krum":
		return &RobustDefense{Inner: def, Rule: RuleMultiKrum, F: f}, nil
	case "norm-bound":
		return &RobustDefense{Inner: def, Rule: RuleNormBound}, nil
	default:
		return nil, fmt.Errorf("fl: unknown aggregator %q (have %v)", name, AggregatorNames)
	}
}
