package fl

import (
	"fmt"
	"sort"
)

// Robust aggregation rules. DINAR's initialization already assumes Byzantine
// participants (§4.1); these aggregators extend the same assumption to the
// learning rounds: a minority of corrupted clients cannot hijack the global
// model through crafted updates. They compose with any client-side defense.

// Median computes the coordinate-wise median of the updates' state vectors.
// It tolerates up to ⌈N/2⌉−1 arbitrarily corrupted updates per coordinate.
func Median(updates []*Update) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: median of zero updates")
	}
	n := len(updates[0].State)
	for _, u := range updates {
		if len(u.State) != n {
			return nil, fmt.Errorf("fl: update from client %d has %d values, want %d", u.ClientID, len(u.State), n)
		}
	}
	out := make([]float64, n)
	column := make([]float64, len(updates))
	for i := 0; i < n; i++ {
		for j, u := range updates {
			column[j] = u.State[i]
		}
		sort.Float64s(column)
		mid := len(column) / 2
		if len(column)%2 == 1 {
			out[i] = column[mid]
		} else {
			out[i] = (column[mid-1] + column[mid]) / 2
		}
	}
	return out, nil
}

// TrimmedMean computes the coordinate-wise mean after discarding the trim
// smallest and trim largest values per coordinate. It requires
// 2·trim < len(updates).
func TrimmedMean(updates []*Update, trim int) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: trimmed mean of zero updates")
	}
	if trim < 0 || 2*trim >= len(updates) {
		return nil, fmt.Errorf("fl: trim %d with %d updates", trim, len(updates))
	}
	n := len(updates[0].State)
	for _, u := range updates {
		if len(u.State) != n {
			return nil, fmt.Errorf("fl: update from client %d has %d values, want %d", u.ClientID, len(u.State), n)
		}
	}
	out := make([]float64, n)
	column := make([]float64, len(updates))
	kept := float64(len(updates) - 2*trim)
	for i := 0; i < n; i++ {
		for j, u := range updates {
			column[j] = u.State[i]
		}
		sort.Float64s(column)
		s := 0.0
		for _, v := range column[trim : len(column)-trim] {
			s += v
		}
		out[i] = s / kept
	}
	return out, nil
}

// RobustRule selects a robust aggregation rule.
type RobustRule int

// Supported robust rules.
const (
	RuleMedian RobustRule = iota + 1
	RuleTrimmedMean
)

// RobustDefense wraps any defense, replacing its server-side aggregation
// with a Byzantine-robust rule while keeping the client-side hooks (DINAR's
// personalization/obfuscation, DP noise, ...) untouched.
type RobustDefense struct {
	// Inner is the wrapped defense.
	Inner Defense
	// Rule selects the aggregation rule (default RuleMedian).
	Rule RobustRule
	// Trim is the per-side trim count for RuleTrimmedMean.
	Trim int
}

var _ Defense = (*RobustDefense)(nil)

// NewRobust wraps a defense with coordinate-wise-median aggregation.
func NewRobust(inner Defense) *RobustDefense {
	return &RobustDefense{Inner: inner, Rule: RuleMedian}
}

// Name implements Defense.
func (r *RobustDefense) Name() string { return r.Inner.Name() + "+robust" }

// Bind implements Defense.
func (r *RobustDefense) Bind(info ModelInfo) error { return r.Inner.Bind(info) }

// OnGlobalModel implements Defense.
func (r *RobustDefense) OnGlobalModel(clientID, round int, global []float64) []float64 {
	return r.Inner.OnGlobalModel(clientID, round, global)
}

// BeforeUpload implements Defense.
func (r *RobustDefense) BeforeUpload(round int, global []float64, u *Update) {
	r.Inner.BeforeUpload(round, global, u)
}

// Aggregate implements Defense with the robust rule.
func (r *RobustDefense) Aggregate(_ int, _ []float64, updates []*Update) ([]float64, error) {
	switch r.Rule {
	case RuleTrimmedMean:
		return TrimmedMean(updates, r.Trim)
	default:
		return Median(updates)
	}
}
