package fl

import (
	"math"
	"math/rand"
	"testing"
)

// quantVec builds a deterministic test vector with a mix of magnitudes.
func quantVec(seed int64, dim int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(3)-1))
	}
	return v
}

// TestEncodeDeltaDeterministic is the bit-reproducibility property the wire
// protocol depends on: the same (kind, seed, stream, round, base, state,
// topK) inputs must produce byte-identical payloads on every call, and any
// change to seed, stream, or round must move at least one level (the
// stochastic rounding is a counter-mode hash, not shared RNG state).
func TestEncodeDeltaDeterministic(t *testing.T) {
	const dim = 1024
	base := quantVec(1, dim)
	state := quantVec(2, dim)
	for _, kind := range []QuantKind{QuantInt8, QuantInt16} {
		for _, topK := range []float64{0, 0.1} {
			a, err := EncodeDelta(kind, 7, 3, 5, 5, base, state, topK)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 5; trial++ {
				b, err := EncodeDelta(kind, 7, 3, 5, 5, base, state, topK)
				if err != nil {
					t.Fatal(err)
				}
				assertPayloadEqual(t, a, b)
			}
			variants := []*DeltaPayload{}
			for _, args := range [][3]int64{{8, 3, 5}, {7, 4, 5}, {7, 3, 6}} {
				v, err := EncodeDelta(kind, args[0], int(args[1]), int(args[2]), 5, base, state, topK)
				if err != nil {
					t.Fatal(err)
				}
				variants = append(variants, v)
			}
			for vi, v := range variants {
				if samePayloadLevels(a, v) {
					t.Errorf("kind=%v topK=%v: variant %d (changed seed/stream/round) produced identical levels", kind, topK, vi)
				}
			}
		}
	}
}

func assertPayloadEqual(t *testing.T, a, b *DeltaPayload) {
	t.Helper()
	if a.Kind != b.Kind || a.Dim != b.Dim || a.BaseRound != b.BaseRound || a.Lo != b.Lo || a.Hi != b.Hi {
		t.Fatalf("payload headers differ: %+v vs %+v", a, b)
	}
	if len(a.Indices) != len(b.Indices) || len(a.Q) != len(b.Q) {
		t.Fatalf("payload sizes differ: %d/%d indices, %d/%d levels", len(a.Indices), len(b.Indices), len(a.Q), len(b.Q))
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatalf("index %d differs: %d vs %d", i, a.Indices[i], b.Indices[i])
		}
	}
	for i := range a.Q {
		if a.Q[i] != b.Q[i] {
			t.Fatalf("level %d differs: %d vs %d", i, a.Q[i], b.Q[i])
		}
	}
}

func samePayloadLevels(a, b *DeltaPayload) bool {
	if len(a.Q) != len(b.Q) {
		return false
	}
	for i := range a.Q {
		if a.Q[i] != b.Q[i] {
			return false
		}
	}
	return true
}

// TestEncodeDeltaAccuracy bounds the reconstruction error by one
// quantization step per coordinate and verifies untouched coordinates of a
// sparse payload pass through exactly.
func TestEncodeDeltaAccuracy(t *testing.T) {
	const dim = 2048
	base := quantVec(3, dim)
	state := quantVec(4, dim)
	for _, tc := range []struct {
		kind QuantKind
		topK float64
	}{
		{QuantInt8, 0}, {QuantInt16, 0}, {QuantInt8, 0.25}, {QuantInt16, 0.05},
	} {
		p, err := EncodeDelta(tc.kind, 11, 0, 1, 1, base, state, tc.topK)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Apply(base, nil)
		if err != nil {
			t.Fatal(err)
		}
		step := (p.Hi - p.Lo) / float64(tc.kind.levels())
		carried := make(map[int]bool, len(p.Indices))
		if tc.topK > 0 {
			k := int(math.Ceil(tc.topK * dim))
			if p.Indices == nil || len(p.Indices) != k {
				t.Fatalf("kind=%v topK=%v: %d indices, want %d", tc.kind, tc.topK, len(p.Indices), k)
			}
			for _, ix := range p.Indices {
				carried[int(ix)] = true
			}
		} else {
			if p.Indices != nil {
				t.Fatalf("kind=%v topK=%v: dense encode produced %d indices", tc.kind, tc.topK, len(p.Indices))
			}
			for i := 0; i < dim; i++ {
				carried[i] = true
			}
		}
		for i := range got {
			if !carried[i] {
				if got[i] != base[i] {
					t.Fatalf("kind=%v topK=%v: uncarried coordinate %d changed: %v vs %v", tc.kind, tc.topK, i, got[i], base[i])
				}
				continue
			}
			if diff := math.Abs(got[i] - state[i]); diff > step+1e-12 {
				t.Fatalf("kind=%v topK=%v: coordinate %d off by %g, step is %g", tc.kind, tc.topK, i, diff, step)
			}
		}
	}
}

// TestEncodeDeltaTopKSelection pins the deterministic top-k rule: largest
// |delta| first, index ties ascending, indices re-sorted ascending in the
// payload.
func TestEncodeDeltaTopKSelection(t *testing.T) {
	base := make([]float64, 8)
	state := []float64{0.1, -5, 0.2, 5, -0.3, 0.1, 4, -0.1}
	p, err := EncodeDelta(QuantInt8, 1, 0, 0, 0, base, state, 0.375) // k = 3
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 3, 6} // |−5|, |5|, |4| re-sorted ascending
	if len(p.Indices) != len(want) {
		t.Fatalf("indices %v, want %v", p.Indices, want)
	}
	for i := range want {
		if p.Indices[i] != want[i] {
			t.Fatalf("indices %v, want %v", p.Indices, want)
		}
	}
}

// TestEncodeDeltaRejectsNonFinite ensures NaN/Inf deltas are refused rather
// than serialized.
func TestEncodeDeltaRejectsNonFinite(t *testing.T) {
	base := make([]float64, 4)
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		state := []float64{1, bad, 2, 3}
		if _, err := EncodeDelta(QuantInt8, 1, 0, 0, 0, base, state, 0); err == nil {
			t.Fatalf("EncodeDelta accepted a state containing %v", bad)
		}
	}
}

// TestDeltaPayloadValidate drives the structural checks a decoder relies on.
func TestDeltaPayloadValidate(t *testing.T) {
	ok := &DeltaPayload{Kind: QuantInt8, Dim: 3, Lo: -1, Hi: 1, Q: []uint16{0, 128, 255}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	cases := []struct {
		name string
		p    DeltaPayload
	}{
		{"bad kind", DeltaPayload{Kind: QuantNone, Dim: 3, Q: []uint16{0, 0, 0}}},
		{"zero dim", DeltaPayload{Kind: QuantInt8, Dim: 0}},
		{"nan range", DeltaPayload{Kind: QuantInt8, Dim: 1, Lo: math.NaN(), Q: []uint16{0}}},
		{"inverted range", DeltaPayload{Kind: QuantInt8, Dim: 1, Lo: 1, Hi: 0, Q: []uint16{0}}},
		{"dense size mismatch", DeltaPayload{Kind: QuantInt8, Dim: 3, Q: []uint16{0}}},
		{"sparse size mismatch", DeltaPayload{Kind: QuantInt8, Dim: 3, Indices: []uint32{0, 1}, Q: []uint16{0}}},
		{"unsorted indices", DeltaPayload{Kind: QuantInt8, Dim: 3, Indices: []uint32{1, 0}, Q: []uint16{0, 0}}},
		{"index out of range", DeltaPayload{Kind: QuantInt8, Dim: 3, Indices: []uint32{0, 3}, Q: []uint16{0, 0}}},
		{"int8 level overflow", DeltaPayload{Kind: QuantInt8, Dim: 1, Hi: 1, Q: []uint16{256}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.p)
		}
	}
}

// TestQuantizedStreamingFoldOrderInvariance is the determinism acceptance
// property: quantized uploads, dequantized and folded into the exact
// fixed-point streaming aggregator, must produce a bit-identical aggregate
// in every arrival order. Quantization happens per (seed, client, round)
// with counter-mode hashing, so reordering connections changes nothing.
func TestQuantizedStreamingFoldOrderInvariance(t *testing.T) {
	const (
		numClients = 24
		dim        = 512
		round      = 6
		seed       = 19
	)
	broadcast := quantVec(100, dim)
	reconstructed := make([][]float64, numClients)
	for id := 0; id < numClients; id++ {
		state := quantVec(200+int64(id), dim)
		p, err := EncodeDelta(QuantInt8, seed, id, round, round, broadcast, state, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		reconstructed[id], err = p.Apply(broadcast, nil)
		if err != nil {
			t.Fatal(err)
		}
	}

	fold := func(order []int) []float64 {
		agg := NewStreamingFedAvg()
		agg.Begin(round, broadcast)
		for _, id := range order {
			err := agg.Fold(&Update{ClientID: id, Round: round, State: reconstructed[id], NumSamples: 1 + id%7})
			if err != nil {
				t.Fatal(err)
			}
		}
		out, err := agg.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	order := make([]int, numClients)
	for i := range order {
		order[i] = i
	}
	want := fold(order)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		got := fold(order)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: aggregate[%d] = %x, want %x (fold must be order-invariant bit-for-bit)",
					trial, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}

	// And the whole pipeline (encode → apply → fold) re-run from scratch
	// must reproduce the identical aggregate: no hidden state anywhere.
	again := make([][]float64, numClients)
	for id := 0; id < numClients; id++ {
		state := quantVec(200+int64(id), dim)
		p, err := EncodeDelta(QuantInt8, seed, id, round, round, broadcast, state, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		again[id], err = p.Apply(broadcast, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	copy(reconstructed, again)
	rerun := fold(order)
	for i := range want {
		if rerun[i] != want[i] {
			t.Fatalf("re-run aggregate[%d] differs: %x vs %x", i, math.Float64bits(rerun[i]), math.Float64bits(want[i]))
		}
	}
}

// TestParseQuantKind covers the flag-value mapping.
func TestParseQuantKind(t *testing.T) {
	for s, want := range map[string]QuantKind{"": QuantNone, "none": QuantNone, "int8": QuantInt8, "int16": QuantInt16} {
		got, err := ParseQuantKind(s)
		if err != nil || got != want {
			t.Errorf("ParseQuantKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseQuantKind("int32"); err == nil {
		t.Error("ParseQuantKind accepted int32")
	}
}
