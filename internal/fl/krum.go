package fl

import (
	"fmt"
	"math"
	"sort"
)

// Distance-based Byzantine-robust aggregators (Blanchard et al., "Machine
// Learning with Adversaries", NeurIPS 2017) and norm-bounded averaging.
// Unlike the coordinate-wise rules in robust.go, Krum scores whole update
// vectors by their distance to the closest peers, so a colluding minority
// cannot shift the aggregate even when each poisoned coordinate individually
// looks plausible.

// isFinite reports whether every coordinate of state is a finite float.
func isFinite(state []float64) bool {
	for _, v := range state {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// finiteUpdates returns the updates whose state vectors are fully finite.
// Non-finite updates must never enter a distance or sort computation (NaN
// poisons both), so every robust rule filters through this first.
func finiteUpdates(updates []*Update) []*Update {
	out := make([]*Update, 0, len(updates))
	for _, u := range updates {
		if isFinite(u.State) {
			out = append(out, u)
		}
	}
	return out
}

// krumSelect returns the m updates with the lowest Krum scores. The score of
// update i is the sum of its n−f−2 smallest squared distances to the other
// updates; ties break on ClientID so selection is deterministic.
func krumSelect(updates []*Update, f, m int) ([]*Update, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: krum of zero updates")
	}
	if f < 0 {
		return nil, fmt.Errorf("fl: krum with negative f %d", f)
	}
	updates = finiteUpdates(updates)
	n := len(updates)
	if n == 0 {
		return nil, fmt.Errorf("fl: krum: every update carries non-finite values")
	}
	k := n - f - 2 // closest neighbors per score
	if k < 1 {
		return nil, fmt.Errorf("fl: krum needs at least f+3=%d finite updates, got %d", f+3, n)
	}
	d := len(updates[0].State)
	for _, u := range updates {
		if len(u.State) != d {
			return nil, fmt.Errorf("fl: update from client %d has %d values, want %d", u.ClientID, len(u.State), d)
		}
	}

	// Pairwise squared L2 distances.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 0.0
			a, b := updates[i].State, updates[j].State
			for c := range a {
				diff := a[c] - b[c]
				s += diff * diff
			}
			dist[i][j] = s
			dist[j][i] = s
		}
	}

	scores := make([]float64, n)
	neighbor := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		neighbor = neighbor[:0]
		for j := 0; j < n; j++ {
			if j != i {
				neighbor = append(neighbor, dist[i][j])
			}
		}
		sort.Float64s(neighbor)
		s := 0.0
		for _, v := range neighbor[:k] {
			s += v
		}
		scores[i] = s
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] < scores[ib]
		}
		return updates[ia].ClientID < updates[ib].ClientID
	})

	if m < 1 {
		m = 1
	}
	if m > k {
		// Multi-Krum's guarantee holds for at most n−f−2 selections.
		m = k
	}
	selected := make([]*Update, m)
	for i := 0; i < m; i++ {
		selected[i] = updates[order[i]]
	}
	return selected, nil
}

// Krum returns the single update closest to its n−f−2 nearest peers,
// tolerating up to f Byzantine updates out of n ≥ f+3.
func Krum(updates []*Update, f int) ([]float64, error) {
	sel, err := krumSelect(updates, f, 1)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), sel[0].State...), nil
}

// MultiKrum averages the m best-scoring updates under the Krum criterion
// (sample-count-weighted, like FedAvg). m ≤ 0 selects the maximum n−f−2.
func MultiKrum(updates []*Update, f, m int) ([]float64, error) {
	if m <= 0 {
		m = len(updates) // clamped to n−f−2 inside krumSelect
	}
	sel, err := krumSelect(updates, f, m)
	if err != nil {
		return nil, err
	}
	return FedAvg(sel)
}

// NormBoundedFedAvg clips every update's delta (state − prevGlobal) to
// multiple × the median delta norm of the round, then averages with FedAvg.
// A boosted update keeps its direction but loses its amplification, so a
// minority cannot dominate the weighted mean. Non-finite updates are
// dropped. multiple ≤ 0 defaults to 1 (clip to the median itself).
func NormBoundedFedAvg(prevGlobal []float64, updates []*Update, multiple float64) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: norm-bounded FedAvg of zero updates")
	}
	updates = finiteUpdates(updates)
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: norm-bounded FedAvg: every update carries non-finite values")
	}
	if multiple <= 0 {
		multiple = 1
	}
	n := len(prevGlobal)
	norms := make([]float64, len(updates))
	for i, u := range updates {
		if len(u.State) != n {
			return nil, fmt.Errorf("fl: update from client %d has %d values, want %d", u.ClientID, len(u.State), n)
		}
		norms[i] = DeltaNorm(prevGlobal, u.State)
	}
	sorted := append([]float64(nil), norms...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	bound := multiple * med
	if bound <= 0 {
		// Degenerate round (all deltas zero): nothing to clip.
		return FedAvg(updates)
	}
	clipped := make([]*Update, len(updates))
	for i, u := range updates {
		if norms[i] <= bound {
			clipped[i] = u
			continue
		}
		scale := bound / norms[i]
		state := make([]float64, n)
		for c := range state {
			state[c] = prevGlobal[c] + scale*(u.State[c]-prevGlobal[c])
		}
		cu := *u
		cu.State = state
		clipped[i] = &cu
	}
	return FedAvg(clipped)
}

// DeltaNorm returns the L2 norm of state − prevGlobal. When lengths differ
// it returns +Inf, which every norm bound rejects.
func DeltaNorm(prevGlobal, state []float64) float64 {
	if len(prevGlobal) != len(state) {
		return math.Inf(1)
	}
	s := 0.0
	for i := range state {
		d := state[i] - prevGlobal[i]
		s += d * d
	}
	return math.Sqrt(s)
}
