package fl

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Client is one FL participant: a local model, a private dataset shard, and
// an optimizer. The defense pipeline wraps its download/upload paths.
type Client struct {
	// ID is the client's index in the federation.
	ID int
	// Model is the client's local model instance.
	Model *nn.Model
	// Data is the client's private training shard.
	Data *data.Dataset
	// Optimizer drives local updates; DINAR uses Adagrad (Algorithm 1).
	Optimizer optim.Optimizer
	// BatchSize and LocalEpochs configure local training.
	BatchSize   int
	LocalEpochs int

	loss nn.SoftmaxCrossEntropy
	rng  *rand.Rand
	// replayBase, when non-zero, reseeds the batch-shuffle rng at the
	// start of every round (see EnableRoundReplay).
	replayBase int64
}

// NewClient builds a client. The rng seeds batch shuffling and must be unique
// per client for IID batch orders.
func NewClient(id int, m *nn.Model, ds *data.Dataset, opt optim.Optimizer, batchSize, localEpochs int, rng *rand.Rand) (*Client, error) {
	if m == nil || ds == nil || opt == nil {
		return nil, fmt.Errorf("fl: client %d missing model/data/optimizer", id)
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("fl: client %d has no data", id)
	}
	if batchSize <= 0 || localEpochs <= 0 {
		return nil, fmt.Errorf("fl: client %d batchSize=%d localEpochs=%d", id, batchSize, localEpochs)
	}
	return &Client{
		ID:          id,
		Model:       m,
		Data:        ds,
		Optimizer:   opt,
		BatchSize:   batchSize,
		LocalEpochs: localEpochs,
		rng:         rng,
	}, nil
}

// EnableRoundReplay makes each round's local training a pure function of
// (client id, round, global state) by reseeding the batch-shuffle rng from
// base at the start of every RunRound. Crash-safe federations need this:
// when a server resumes from a checkpoint and re-broadcasts a round the
// client already trained, the retrained update is bit-identical to the
// first attempt instead of diverging through the advanced rng stream. A
// zero base disables replay (the default stream behavior).
func (c *Client) EnableRoundReplay(base int64) {
	c.replayBase = base
}

// roundRNG derives the per-round shuffle rng for replay mode (SplitMix64
// finalizer over base, round, and client id so streams decorrelate).
func roundRNG(base int64, round, id int) *rand.Rand {
	z := uint64(base) ^ uint64(round+1)*0x9e3779b97f4a7c15 ^ uint64(id+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Install loads the (defense-transformed) global state into the local model.
func (c *Client) Install(state []float64) error {
	return c.Model.SetStateVector(state)
}

// TrainLocal runs LocalEpochs epochs of mini-batch training and returns the
// mean loss of the final epoch. Algorithm 1 resets the adaptive-gradient
// accumulator at the start of each round (line 8: G ← 0), which Reset
// implements.
func (c *Client) TrainLocal() (float64, error) {
	c.Optimizer.Reset()
	params, grads := c.Model.Params(), c.Model.Grads()
	var lastEpochLoss float64
	for epoch := 0; epoch < c.LocalEpochs; epoch++ {
		var sum float64
		var batches int
		err := c.Data.Batches(c.BatchSize, c.rng, func(x *tensor.Tensor, y []int) error {
			out := c.Model.Forward(x, true)
			res, err := c.loss.Eval(out, y)
			if err != nil {
				return fmt.Errorf("client %d: %w", c.ID, err)
			}
			c.Model.Backward(res.Grad)
			if two, ok := c.Optimizer.(optim.TwoPhase); ok {
				// Sharpness-aware minimization: re-evaluate the gradient at
				// the perturbed parameters before the real update.
				if two.FirstStep(params, grads) {
					out = c.Model.Forward(x, true)
					res2, err := c.loss.Eval(out, y)
					if err != nil {
						return fmt.Errorf("client %d: %w", c.ID, err)
					}
					c.Model.Backward(res2.Grad)
				}
				two.SecondStep(params, grads)
			} else {
				c.Optimizer.Step(params, grads)
			}
			sum += res.Mean
			batches++
			return nil
		})
		if err != nil {
			return 0, err
		}
		if batches > 0 {
			lastEpochLoss = sum / float64(batches)
		}
	}
	return lastEpochLoss, nil
}

// RunRound executes one full client round against the defense pipeline:
// personalize/install, train, protect, and return the upload. meter may be
// nil.
func (c *Client) RunRound(round int, globalState []float64, def Defense, meter *metrics.CostMeter) (*Update, error) {
	state := def.OnGlobalModel(c.ID, round, globalState)
	if err := c.Install(state); err != nil {
		return nil, fmt.Errorf("client %d install: %w", c.ID, err)
	}
	if c.replayBase != 0 {
		c.rng = roundRNG(c.replayBase, round, c.ID)
	}
	start := time.Now()
	if _, err := c.TrainLocal(); err != nil {
		return nil, err
	}
	u := &Update{
		ClientID:   c.ID,
		Round:      round,
		State:      c.Model.StateVector(),
		NumSamples: c.Data.Len(),
	}
	def.BeforeUpload(round, globalState, u)
	elapsed := time.Since(start)
	telClientTrainSeconds.Observe(elapsed.Seconds())
	if meter != nil {
		meter.AddClientTrain(elapsed)
		meter.SamplePhase(metrics.PhaseTrain)
	}
	return u, nil
}

// Evaluate computes accuracy and mean loss of the client's current
// (personalized) model on ds in evaluation mode.
func (c *Client) Evaluate(ds *data.Dataset) (accuracy, meanLoss float64, err error) {
	return EvaluateModel(c.Model, ds, c.BatchSize)
}

// EvaluateModel computes accuracy and mean loss of a model over a dataset in
// evaluation mode.
func EvaluateModel(m *nn.Model, ds *data.Dataset, batchSize int) (accuracy, meanLoss float64, err error) {
	var loss nn.SoftmaxCrossEntropy
	var correct, total int
	var lossSum float64
	err = ds.Batches(batchSize, nil, func(x *tensor.Tensor, y []int) error {
		out := m.Forward(x, false)
		res, lerr := loss.Eval(out, y)
		if lerr != nil {
			return lerr
		}
		correct += int(nn.Accuracy(out, y)*float64(len(y)) + 0.5)
		for _, l := range res.PerSample {
			lossSum += l
		}
		total += len(y)
		return nil
	})
	if err != nil || total == 0 {
		return 0, 0, err
	}
	return float64(correct) / float64(total), lossSum / float64(total), nil
}

// PerSampleLosses returns the model's evaluation-mode per-sample losses over
// ds — the attacker-observable signal behind loss-based MIAs and Fig. 3.
func PerSampleLosses(m *nn.Model, ds *data.Dataset, batchSize int) ([]float64, error) {
	var loss nn.SoftmaxCrossEntropy
	out := make([]float64, 0, ds.Len())
	err := ds.Batches(batchSize, nil, func(x *tensor.Tensor, y []int) error {
		logits := m.Forward(x, false)
		res, lerr := loss.Eval(logits, y)
		if lerr != nil {
			return lerr
		}
		out = append(out, res.PerSample...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
