package fl

import (
	"math"
	"testing"
)

func mkUpdates(states ...[]float64) []*Update {
	out := make([]*Update, len(states))
	for i, s := range states {
		out[i] = &Update{ClientID: i, State: s, NumSamples: 1}
	}
	return out
}

func TestMedianOdd(t *testing.T) {
	got, err := Median(mkUpdates(
		[]float64{1, 10},
		[]float64{2, 20},
		[]float64{100, -5},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 10 {
		t.Fatalf("median = %v", got)
	}
}

func TestMedianEven(t *testing.T) {
	got, err := Median(mkUpdates(
		[]float64{1},
		[]float64{3},
		[]float64{5},
		[]float64{100},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 {
		t.Fatalf("median = %v", got)
	}
}

func TestMedianResistsOutlier(t *testing.T) {
	// One Byzantine update with huge values must not move the aggregate far.
	honest := [][]float64{{1, 1}, {1.1, 0.9}, {0.9, 1.1}}
	byz := []float64{1e9, -1e9}
	got, err := Median(mkUpdates(honest[0], honest[1], honest[2], byz))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if math.Abs(v-1) > 0.2 {
			t.Fatalf("median hijacked: %v", got)
		}
	}
}

func TestMedianErrors(t *testing.T) {
	if _, err := Median(nil); err == nil {
		t.Fatal("accepted zero updates")
	}
	if _, err := Median(mkUpdates([]float64{1}, []float64{1, 2})); err == nil {
		t.Fatal("accepted mismatched updates")
	}
}

func TestTrimmedMean(t *testing.T) {
	got, err := TrimmedMean(mkUpdates(
		[]float64{-100},
		[]float64{1},
		[]float64{2},
		[]float64{3},
		[]float64{100},
	), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("trimmed mean = %v", got)
	}
}

func TestTrimmedMeanErrors(t *testing.T) {
	u := mkUpdates([]float64{1}, []float64{2})
	if _, err := TrimmedMean(nil, 0); err == nil {
		t.Fatal("accepted zero updates")
	}
	if _, err := TrimmedMean(u, 1); err == nil {
		t.Fatal("accepted trim >= half")
	}
	if _, err := TrimmedMean(u, -1); err == nil {
		t.Fatal("accepted negative trim")
	}
	if _, err := TrimmedMean(mkUpdates([]float64{1}, []float64{1, 2}, []float64{3, 4}), 1); err == nil {
		t.Fatal("accepted mismatched updates")
	}
}

// Regression: sort.Float64s compares NaN as false against everything, so a
// single poisoned coordinate used to land wherever the sort left it and
// silently shift the median/trim window. Non-finite values must be filtered
// out before ordering, leaving the honest majority in charge.
func TestMedianFiltersNonFinite(t *testing.T) {
	got, err := Median(mkUpdates(
		[]float64{1, 1},
		[]float64{2, 2},
		[]float64{3, 3},
		[]float64{math.NaN(), math.Inf(1)},
		[]float64{math.NaN(), math.Inf(-1)},
	))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("median with NaN column = %v, want [2 2]", got)
	}

	// A coordinate with no finite value at all cannot be aggregated.
	if _, err := Median(mkUpdates([]float64{math.NaN()}, []float64{math.Inf(1)})); err == nil {
		t.Fatal("accepted an all-non-finite coordinate")
	}
}

func TestTrimmedMeanFiltersNonFinite(t *testing.T) {
	got, err := TrimmedMean(mkUpdates(
		[]float64{-100},
		[]float64{1},
		[]float64{2},
		[]float64{3},
		[]float64{100},
		[]float64{math.NaN()},
	), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("trimmed mean with NaN = %v, want [2]", got)
	}

	// Filtering may leave too few finite values for the trim window.
	if _, err := TrimmedMean(mkUpdates(
		[]float64{1},
		[]float64{math.NaN()},
		[]float64{math.Inf(1)},
	), 1); err == nil {
		t.Fatal("accepted a trim window larger than the finite column")
	}
}

func TestRobustDefenseWrapsInner(t *testing.T) {
	inner := &noneDefense{}
	r := NewRobust(inner)
	if r.Name() != "none+robust" {
		t.Fatalf("name = %q", r.Name())
	}
	if err := r.Bind(ModelInfo{NumParams: 1, NumState: 1}); err != nil {
		t.Fatal(err)
	}
	// Aggregation uses the median, not FedAvg.
	got, err := r.Aggregate(0, nil, mkUpdates([]float64{1}, []float64{2}, []float64{300}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("robust aggregate = %v", got)
	}
	// Trimmed-mean rule.
	r.Rule = RuleTrimmedMean
	r.Trim = 1
	got, err = r.Aggregate(0, nil, mkUpdates([]float64{1}, []float64{2}, []float64{300}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("trimmed aggregate = %v", got)
	}
	// Client-side hooks delegate to the inner defense (identity here).
	out := r.OnGlobalModel(0, 0, []float64{5})
	if out[0] != 5 {
		t.Fatal("OnGlobalModel not delegated")
	}
	u := &Update{State: []float64{5}}
	r.BeforeUpload(0, []float64{5}, u)
	if u.State[0] != 5 {
		t.Fatal("BeforeUpload not delegated")
	}
}
