package fl

import (
	"repro/internal/telemetry"
)

// Metrics bundles the FL-core server-side instruments: screen verdicts,
// quarantine occupancy, and screen/aggregate phase timings. Each
// federation registers one bundle into its own telemetry registry so two
// servers in one process (service mode) never merge their counters — the
// process-global defaultMetrics bundle serves single-federation binaries
// and every Server/Screen that was not given an explicit bundle.
type Metrics struct {
	ScreenSeconds       *telemetry.Histogram
	AggregateSeconds    *telemetry.Histogram
	RoundsAggregated    *telemetry.Counter
	ScreenAccepted      *telemetry.Counter
	ScreenRejected      *telemetry.Counter
	ScreenClipped       *telemetry.Counter
	ScreenQuarantined   *telemetry.Counter
	QuarantineOccupancy *telemetry.Gauge
	AggUpdateBytesPeak  *telemetry.Gauge
}

// NewMetrics registers (or, when a resumed job reuses its registry,
// re-looks-up) the FL-core instrument bundle in r. nil r means the
// process-wide default bundle.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return defaultMetrics
	}
	return newMetricsIn(r)
}

func newMetricsIn(r *telemetry.Registry) *Metrics {
	return &Metrics{
		ScreenSeconds: r.Histogram("dinar_fl_screen_seconds",
			"per-round update-screen duration on the server", nil),
		AggregateSeconds: r.Histogram("dinar_fl_aggregate_seconds",
			"per-round defense-aggregation duration on the server", nil),
		RoundsAggregated: r.Counter("dinar_fl_rounds_aggregated_total",
			"rounds the FL core aggregated successfully"),
		ScreenAccepted: r.Counter("dinar_fl_screen_accepted_total",
			"updates that passed the Byzantine screen (clipped ones included)"),
		ScreenRejected: r.Counter("dinar_fl_screen_rejected_total",
			"updates the Byzantine screen rejected"),
		ScreenClipped: r.Counter("dinar_fl_screen_clipped_total",
			"updates whose deltas the screen norm-clipped"),
		ScreenQuarantined: r.Counter("dinar_fl_screen_quarantined_total",
			"updates dropped because the sender was serving a quarantine penalty"),
		QuarantineOccupancy: r.Gauge("dinar_fl_quarantine_occupancy",
			"clients currently serving a quarantine penalty"),
		AggUpdateBytesPeak: r.Gauge("dinar_fl_agg_update_bytes_peak",
			"peak bytes of client update payloads (plus any streaming accumulator) resident in the aggregation path; the materialized path holds the whole cohort, the streaming path one update"),
	}
}

// defaultMetrics is the process-wide bundle in telemetry.Default(), the
// home of every instrument before service mode introduced per-job
// registries. NewMetrics(nil) returns it, so existing single-federation
// call paths keep their metric names and accumulation behavior.
var defaultMetrics = newMetricsIn(telemetry.Default())

// telClientTrainSeconds stays process-global: it is recorded on the
// client side of the wire, where there is no job-scoped registry (a
// client process trains for exactly one federation).
var telClientTrainSeconds = telemetry.NewHistogram("dinar_fl_client_train_seconds",
	"one client's local-training duration for one round", nil)

// ResetAggPeakBytes zeroes the default bundle's aggregation peak-memory
// gauge. The gauge is monotone within a federation (SetMax); scale tests
// comparing runs of different cohort sizes reset it between runs.
func ResetAggPeakBytes() { defaultMetrics.AggUpdateBytesPeak.Set(0) }
