package fl

import (
	"repro/internal/telemetry"
)

// FL-core telemetry: client train durations, screen verdicts, quarantine
// occupancy, and the server's screen/aggregate phase timings. All
// instruments live in the process-wide default registry and are served by
// the dinar-server admin listener's /metrics endpoint.
var (
	telClientTrainSeconds = telemetry.NewHistogram("dinar_fl_client_train_seconds",
		"one client's local-training duration for one round", nil)
	telScreenSeconds = telemetry.NewHistogram("dinar_fl_screen_seconds",
		"per-round update-screen duration on the server", nil)
	telAggregateSeconds = telemetry.NewHistogram("dinar_fl_aggregate_seconds",
		"per-round defense-aggregation duration on the server", nil)
	telRoundsAggregated = telemetry.NewCounter("dinar_fl_rounds_aggregated_total",
		"rounds the FL core aggregated successfully")
	telScreenAccepted = telemetry.NewCounter("dinar_fl_screen_accepted_total",
		"updates that passed the Byzantine screen (clipped ones included)")
	telScreenRejected = telemetry.NewCounter("dinar_fl_screen_rejected_total",
		"updates the Byzantine screen rejected")
	telScreenClipped = telemetry.NewCounter("dinar_fl_screen_clipped_total",
		"updates whose deltas the screen norm-clipped")
	telScreenQuarantined = telemetry.NewCounter("dinar_fl_screen_quarantined_total",
		"updates dropped because the sender was serving a quarantine penalty")
	telQuarantineOccupancy = telemetry.NewGauge("dinar_fl_quarantine_occupancy",
		"clients currently serving a quarantine penalty")
	telAggUpdateBytesPeak = telemetry.NewGauge("dinar_fl_agg_update_bytes_peak",
		"peak bytes of client update payloads (plus any streaming accumulator) resident in the aggregation path; the materialized path holds the whole cohort, the streaming path one update")
)

// ResetAggPeakBytes zeroes the aggregation peak-memory gauge. The gauge is
// monotone within a federation (SetMax); scale tests comparing runs of
// different cohort sizes reset it between runs.
func ResetAggPeakBytes() { telAggUpdateBytesPeak.Set(0) }
