package fl

import (
	"context"
	"testing"

	"repro/internal/parallel"
)

// restorePool resets compute-pool configuration mutated by a test.
func restorePool(t *testing.T) {
	t.Helper()
	prevW := parallel.Workers()
	t.Cleanup(func() { parallel.SetWorkers(prevW) })
}

// buildRun constructs a small system, runs it to completion, finalizes the
// clients, and returns the mean accuracy plus every client's final state.
func buildRun(t *testing.T, par bool) (float64, [][]float64) {
	t.Helper()
	cfg := smallConfig()
	cfg.Clients = 5
	cfg.Parallel = par
	sys, err := NewSystem(cfg, &noneDefense{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.FinalizeClients(); err != nil {
		t.Fatal(err)
	}
	acc, err := sys.MeanClientAccuracy(sys.Split.Test)
	if err != nil {
		t.Fatal(err)
	}
	states := make([][]float64, len(sys.Clients))
	for i, c := range sys.Clients {
		states[i] = c.Model.StateVector()
	}
	return acc, states
}

// TestFinalizeAndAccuracyPoolParallelBitIdentical checks the pool-parallel
// FinalizeClients / MeanClientAccuracy / RunRound paths produce the same
// accuracy and the same client states as the serial configuration,
// regardless of pool size.
func TestFinalizeAndAccuracyPoolParallelBitIdentical(t *testing.T) {
	restorePool(t)
	parallel.SetWorkers(1)
	wantAcc, wantStates := buildRun(t, false)
	for _, workers := range []int{2, 4} {
		parallel.SetWorkers(workers)
		acc, states := buildRun(t, true)
		if acc != wantAcc {
			t.Fatalf("workers=%d: accuracy %v, serial %v", workers, acc, wantAcc)
		}
		for i := range states {
			if len(states[i]) != len(wantStates[i]) {
				t.Fatalf("workers=%d client %d: state length mismatch", workers, i)
			}
			for j := range states[i] {
				if states[i][j] != wantStates[i][j] {
					t.Fatalf("workers=%d client %d: state[%d] = %v, serial %v",
						workers, i, j, states[i][j], wantStates[i][j])
				}
			}
		}
	}
}

// truncatingDefense corrupts the download path for client IDs at or above
// failFrom, forcing Install to fail for those clients.
type truncatingDefense struct {
	noneDefense
	failFrom int
}

func (d *truncatingDefense) OnGlobalModel(clientID, round int, global []float64) []float64 {
	if clientID >= d.failFrom {
		return global[:1]
	}
	return d.noneDefense.OnGlobalModel(clientID, round, global)
}

// TestFinalizeClientsFirstErrorWins checks the deterministic error rule: the
// lowest-index failing client's error is the one returned, independent of
// pool size and scheduling.
func TestFinalizeClientsFirstErrorWins(t *testing.T) {
	restorePool(t)
	cfg := smallConfig()
	cfg.Clients = 5
	def := &truncatingDefense{failFrom: 2}
	sys, err := NewSystem(cfg, def)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		var want error
		// The reference error comes from installing the truncated state on
		// the lowest failing client directly.
		want = sys.Clients[2].Install(sys.Server.GlobalState()[:1])
		if want == nil {
			t.Fatal("truncated install unexpectedly succeeded")
		}
		got := sys.FinalizeClients()
		if got == nil {
			t.Fatalf("workers=%d: FinalizeClients should fail", workers)
		}
		if got.Error() != want.Error() {
			t.Fatalf("workers=%d: got error %q, want lowest-index client error %q", workers, got, want)
		}
		// Restore the corrupted client for the next iteration.
		if err := sys.Clients[2].Install(sys.Server.GlobalState()); err != nil {
			t.Fatal(err)
		}
	}
}
