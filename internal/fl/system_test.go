package fl

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/optim"
)

// noneDefense is a local identity defense to avoid importing
// internal/defense (which would create an import cycle in tests).
type noneDefense struct{ info ModelInfo }

func (d *noneDefense) Name() string { return "none" }
func (d *noneDefense) Bind(info ModelInfo) error {
	d.info = info
	return nil
}
func (d *noneDefense) OnGlobalModel(_, _ int, global []float64) []float64 {
	return append([]float64(nil), global...)
}
func (d *noneDefense) BeforeUpload(_ int, _ []float64, _ *Update) {}
func (d *noneDefense) Aggregate(_ int, _ []float64, updates []*Update) ([]float64, error) {
	return FedAvg(updates)
}

func smallConfig() Config {
	return Config{
		Dataset:      "purchase100",
		Records:      600,
		Clients:      3,
		Rounds:       2,
		LocalEpochs:  1,
		BatchSize:    32,
		LearningRate: 0.05,
		Optimizer:    "sgd",
		Seed:         1,
	}
}

func TestNewSystemShapes(t *testing.T) {
	sys, err := NewSystem(smallConfig(), &noneDefense{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Clients) != 3 {
		t.Fatalf("clients = %d", len(sys.Clients))
	}
	// Paper split: 600 -> 300 attacker, 240 train, 60 test.
	if sys.Split.Attacker.Len() != 300 || sys.Split.Train.Len() != 240 || sys.Split.Test.Len() != 60 {
		t.Fatalf("split = %d/%d/%d", sys.Split.Attacker.Len(), sys.Split.Train.Len(), sys.Split.Test.Len())
	}
	total := 0
	for _, sh := range sys.Shards {
		total += sh.Len()
	}
	if total != 240 {
		t.Fatalf("shards cover %d", total)
	}
}

func TestNewSystemErrors(t *testing.T) {
	cfg := smallConfig()
	if _, err := NewSystem(cfg, nil); err == nil {
		t.Fatal("accepted nil defense")
	}
	cfg.Dataset = "nope"
	if _, err := NewSystem(cfg, &noneDefense{}); err == nil {
		t.Fatal("accepted unknown dataset")
	}
	cfg = smallConfig()
	cfg.Optimizer = "nope"
	if _, err := NewSystem(cfg, &noneDefense{}); err == nil {
		t.Fatal("accepted unknown optimizer")
	}
}

func TestSystemRunChangesGlobalState(t *testing.T) {
	sys, err := NewSystem(smallConfig(), &noneDefense{})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Server.GlobalState()
	updates, err := sys.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 3 {
		t.Fatalf("final round updates = %d", len(updates))
	}
	after := sys.Server.GlobalState()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("global state unchanged after training")
	}
	if sys.Server.Round() != 2 {
		t.Fatalf("rounds = %d", sys.Server.Round())
	}
}

func TestSystemDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		sys, err := NewSystem(smallConfig(), &noneDefense{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return sys.Server.GlobalState()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different global states")
		}
	}
}

func TestSystemParallelMatchesSequentialAggregate(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	cfgSeq := smallConfig()
	cfgPar := smallConfig()
	cfgPar.Parallel = true

	runWith := func(cfg Config) []float64 {
		sys, err := NewSystem(cfg, &noneDefense{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return sys.Server.GlobalState()
	}
	a, b := runWith(cfgSeq), runWith(cfgPar)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("parallel and sequential training disagree")
		}
	}
}

func TestSystemCancellation(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	sys, err := NewSystem(smallConfig(), &noneDefense{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Run(ctx); err == nil {
		t.Fatal("cancelled run should fail")
	}
}

func TestSystemLearns(t *testing.T) {
	cfg := smallConfig()
	cfg.Dataset = "purchase100"
	cfg.Records = 1200
	cfg.Rounds = 6
	cfg.LocalEpochs = 2
	cfg.LearningRate = 0.1
	sys, err := NewSystem(cfg, &noneDefense{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.FinalizeClients(); err != nil {
		t.Fatal(err)
	}
	acc, err := sys.MeanClientAccuracy(sys.Split.Test)
	if err != nil {
		t.Fatal(err)
	}
	// 100 classes, random = 1%. Require clear learning signal.
	if acc < 0.05 {
		t.Fatalf("test accuracy %.3f shows no learning", acc)
	}
	report := sys.Meter.Report()
	if report.MeanClientTrain == 0 {
		t.Fatal("cost meter recorded no client training time")
	}
	if report.MeanServerAgg == 0 {
		t.Fatal("cost meter recorded no aggregation time")
	}
}

func TestSystemDirichletPartition(t *testing.T) {
	cfg := smallConfig()
	cfg.DirichletAlpha = 0.5
	sys, err := NewSystem(cfg, &noneDefense{})
	if err != nil {
		t.Fatal(err)
	}
	skew := data.SkewMetric(sys.Split.Train, sys.Shards)
	cfg2 := smallConfig()
	sys2, err := NewSystem(cfg2, &noneDefense{})
	if err != nil {
		t.Fatal(err)
	}
	iidSkew := data.SkewMetric(sys2.Split.Train, sys2.Shards)
	if skew <= iidSkew {
		t.Fatalf("dirichlet skew %v should exceed IID skew %v", skew, iidSkew)
	}
}

func TestClientValidation(t *testing.T) {
	spec, _ := data.Lookup("purchase100")
	ds, _ := data.GenerateN(spec, 20, 1)
	m := model.FCNN6(spec.Features, spec.Classes, rand.New(rand.NewSource(1)))
	opt := optim.NewSGD(0.1, 0)
	rng := rand.New(rand.NewSource(2))
	if _, err := NewClient(0, nil, ds, opt, 8, 1, rng); err == nil {
		t.Fatal("accepted nil model")
	}
	if _, err := NewClient(0, m, ds, opt, 0, 1, rng); err == nil {
		t.Fatal("accepted zero batch size")
	}
	if _, err := NewClient(0, m, ds, opt, 8, 0, rng); err == nil {
		t.Fatal("accepted zero epochs")
	}
	empty := ds.Subset(nil)
	if _, err := NewClient(0, m, empty, opt, 8, 1, rng); err == nil {
		t.Fatal("accepted empty dataset")
	}
	c, err := NewClient(0, m, ds, opt, 8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TrainLocal(); err != nil {
		t.Fatal(err)
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(nil, &noneDefense{}, nil); err == nil {
		t.Fatal("accepted empty state")
	}
	if _, err := NewServer([]float64{1}, nil, nil); err == nil {
		t.Fatal("accepted nil defense")
	}
	s, err := NewServer([]float64{1, 2}, &noneDefense{}, metrics.NewCostMeter())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Aggregate(nil); err == nil {
		t.Fatal("accepted empty round")
	}
	if err := s.Aggregate([]*Update{{State: []float64{1}}}); err == nil {
		t.Fatal("accepted short update")
	}
	if err := s.Aggregate([]*Update{{State: []float64{3, 4}, NumSamples: 1}}); err != nil {
		t.Fatal(err)
	}
	got := s.GlobalState()
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("state = %v", got)
	}
}

func TestEvaluateModel(t *testing.T) {
	spec, _ := data.Lookup("purchase100")
	ds, _ := data.GenerateN(spec, 40, 3)
	m := model.FCNN6(spec.Features, spec.Classes, rand.New(rand.NewSource(1)))
	acc, meanLoss, err := EvaluateModel(m, ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
	if meanLoss <= 0 {
		t.Fatalf("loss = %v", meanLoss)
	}
	losses, err := PerSampleLosses(m, ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 40 {
		t.Fatalf("per-sample losses = %d", len(losses))
	}
}

func TestPartialParticipation(t *testing.T) {
	cfg := smallConfig()
	cfg.Participation = 0.34 // ceil(0.34*3) = 2 of 3 clients per round
	sys, err := NewSystem(cfg, &noneDefense{})
	if err != nil {
		t.Fatal(err)
	}
	updates, err := sys.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 2 {
		t.Fatalf("participants = %d, want 2", len(updates))
	}
	// Selection must vary across rounds (deterministically per seed).
	seen := make(map[int]bool)
	for r := 0; r < 6; r++ {
		for _, c := range sys.selectClients(r) {
			seen[c.ID] = true
		}
	}
	if len(seen) < 3 {
		t.Fatalf("rotation covered only %d clients", len(seen))
	}
}

func TestFullParticipationDefault(t *testing.T) {
	cfg := smallConfig()
	sys, err := NewSystem(cfg, &noneDefense{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.selectClients(0)); got != 3 {
		t.Fatalf("default participation selected %d of 3", got)
	}
}
