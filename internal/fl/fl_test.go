package fl

import (
	"math"
	"testing"
)

func TestFedAvgWeighted(t *testing.T) {
	updates := []*Update{
		{ClientID: 0, State: []float64{1, 2}, NumSamples: 1},
		{ClientID: 1, State: []float64{4, 8}, NumSamples: 3},
	}
	got, err := FedAvg(updates)
	if err != nil {
		t.Fatal(err)
	}
	// (1*1 + 4*3)/4 = 3.25, (2*1 + 8*3)/4 = 6.5
	if math.Abs(got[0]-3.25) > 1e-12 || math.Abs(got[1]-6.5) > 1e-12 {
		t.Fatalf("FedAvg = %v", got)
	}
}

func TestFedAvgZeroWeightsFallsBackToMean(t *testing.T) {
	updates := []*Update{
		{ClientID: 0, State: []float64{2}, NumSamples: 0},
		{ClientID: 1, State: []float64{4}, NumSamples: 0},
	}
	got, err := FedAvg(updates)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Fatalf("FedAvg fallback = %v", got)
	}
}

func TestFedAvgErrors(t *testing.T) {
	if _, err := FedAvg(nil); err == nil {
		t.Fatal("FedAvg accepted zero updates")
	}
	updates := []*Update{
		{ClientID: 0, State: []float64{1, 2}, NumSamples: 1},
		{ClientID: 1, State: []float64{1}, NumSamples: 1},
	}
	if _, err := FedAvg(updates); err == nil {
		t.Fatal("FedAvg accepted mismatched updates")
	}
}

func TestMaskedSum(t *testing.T) {
	// Clients pre-scale by sample counts: 2*[1,1] and 3*[3,5].
	updates := []*Update{
		{ClientID: 0, State: []float64{2, 2}, NumSamples: 2},
		{ClientID: 1, State: []float64{9, 15}, NumSamples: 3},
	}
	got, err := MaskedSum(updates)
	if err != nil {
		t.Fatal(err)
	}
	// (2+9)/5 = 2.2, (2+15)/5 = 3.4 — the weighted average of [1,1] and [3,5].
	if math.Abs(got[0]-2.2) > 1e-12 || math.Abs(got[1]-3.4) > 1e-12 {
		t.Fatalf("MaskedSum = %v", got)
	}
}

func TestMaskedSumErrors(t *testing.T) {
	if _, err := MaskedSum(nil); err == nil {
		t.Fatal("MaskedSum accepted zero updates")
	}
	if _, err := MaskedSum([]*Update{{State: []float64{1}, NumSamples: 0}}); err == nil {
		t.Fatal("MaskedSum accepted zero total samples")
	}
	updates := []*Update{
		{ClientID: 0, State: []float64{1, 2}, NumSamples: 1},
		{ClientID: 1, State: []float64{1}, NumSamples: 1},
	}
	if _, err := MaskedSum(updates); err == nil {
		t.Fatal("MaskedSum accepted mismatched updates")
	}
}
