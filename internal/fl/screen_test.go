package fl

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

func TestScreenRejectsNonFinite(t *testing.T) {
	sc := NewScreen(ScreenConfig{})
	prev := []float64{0, 0}
	kept, rep := sc.Apply(0, prev, []*Update{
		{ClientID: 0, State: []float64{1, 2}, NumSamples: 1},
		{ClientID: 1, State: []float64{math.NaN(), 2}, NumSamples: 1},
		{ClientID: 2, State: []float64{1, math.Inf(-1)}, NumSamples: 1},
	})
	if len(kept) != 1 || kept[0].ClientID != 0 {
		t.Fatalf("kept = %+v", kept)
	}
	if len(rep.Rejected) != 2 {
		t.Fatalf("rejected = %+v", rep.Rejected)
	}
	for _, v := range rep.Rejected {
		if !strings.Contains(v.Reason, "non-finite") {
			t.Fatalf("reason = %q", v.Reason)
		}
	}
	if got := rep.RejectedIDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("rejected ids = %v", got)
	}
}

func TestScreenRejectsStructuralFaults(t *testing.T) {
	sc := NewScreen(ScreenConfig{})
	prev := []float64{0, 0}
	kept, rep := sc.Apply(0, prev, []*Update{
		{ClientID: 0, State: []float64{1}, NumSamples: 1},     // wrong length
		{ClientID: 1, State: []float64{1, 2}, NumSamples: -5}, // negative weight
		{ClientID: 2, State: []float64{1, 2}, NumSamples: 0},  // fine
	})
	if len(kept) != 1 || kept[0].ClientID != 2 {
		t.Fatalf("kept = %+v", kept)
	}
	if len(rep.Rejected) != 2 {
		t.Fatalf("rejected = %+v", rep.Rejected)
	}
	if !strings.Contains(rep.Rejected[0].Reason, "values") {
		t.Fatalf("length reason = %q", rep.Rejected[0].Reason)
	}
	if !strings.Contains(rep.Rejected[1].Reason, "sample count") {
		t.Fatalf("weight reason = %q", rep.Rejected[1].Reason)
	}
}

func TestScreenAllowNonFinite(t *testing.T) {
	sc := NewScreen(ScreenConfig{AllowNonFinite: true})
	kept, rep := sc.Apply(0, []float64{0}, []*Update{
		{ClientID: 0, State: []float64{math.NaN()}, NumSamples: 1},
	})
	if len(kept) != 1 || len(rep.Rejected) != 0 {
		t.Fatalf("AllowNonFinite should keep the update: %+v", rep)
	}
}

func TestScreenQuarantineLifecycle(t *testing.T) {
	sc := NewScreen(ScreenConfig{QuarantineRounds: 2})
	prev := []float64{0}
	poison := func(round int) ScreenReport {
		_, rep := sc.Apply(round, prev, []*Update{
			{ClientID: 7, State: []float64{math.NaN()}, NumSamples: 1},
		})
		return rep
	}
	clean := func(round int) ([]*Update, ScreenReport) {
		return sc.Apply(round, prev, []*Update{
			{ClientID: 7, State: []float64{1}, NumSamples: 1},
		})
	}

	// Round 0: first offense quarantines immediately (Strikes defaults to 1).
	rep := poison(0)
	if len(rep.NewlyQuarantined) != 1 || rep.NewlyQuarantined[0] != 7 {
		t.Fatalf("round 0: %+v", rep)
	}
	if sc.Offenses(7) != 1 {
		t.Fatalf("offenses = %d", sc.Offenses(7))
	}

	// Rounds 1-2: even clean updates are excluded while the penalty lasts.
	for round := 1; round <= 2; round++ {
		if !sc.Quarantined(7, round) {
			t.Fatalf("round %d: client should be quarantined", round)
		}
		kept, rep := clean(round)
		if len(kept) != 0 || len(rep.Quarantined) != 1 {
			t.Fatalf("round %d: kept=%d report=%+v", round, len(kept), rep)
		}
		if len(rep.NewlyQuarantined) != 0 {
			t.Fatalf("round %d: penalty must not restart: %+v", round, rep)
		}
	}

	// Round 3: the penalty expired; the client participates again.
	if sc.Quarantined(7, 3) {
		t.Fatal("round 3: quarantine should have expired")
	}
	kept, rep := clean(3)
	if len(kept) != 1 || len(rep.Accepted) != 1 {
		t.Fatalf("round 3: %+v", rep)
	}
}

func TestScreenStrikesBudget(t *testing.T) {
	sc := NewScreen(ScreenConfig{Strikes: 2, QuarantineRounds: 1})
	prev := []float64{0}
	bad := []*Update{{ClientID: 3, State: []float64{math.Inf(1)}, NumSamples: 1}}

	_, rep := sc.Apply(0, prev, bad)
	if len(rep.NewlyQuarantined) != 0 {
		t.Fatalf("first strike should not quarantine: %+v", rep)
	}
	_, rep = sc.Apply(1, prev, bad)
	if len(rep.NewlyQuarantined) != 1 {
		t.Fatalf("second strike should quarantine: %+v", rep)
	}
}

func TestScreenQuarantineDisabled(t *testing.T) {
	sc := NewScreen(ScreenConfig{QuarantineRounds: -1})
	prev := []float64{0}
	bad := []*Update{{ClientID: 0, State: []float64{math.NaN()}, NumSamples: 1}}
	_, rep := sc.Apply(0, prev, bad)
	if len(rep.NewlyQuarantined) != 0 {
		t.Fatalf("quarantine disabled: %+v", rep)
	}
	if sc.Quarantined(0, 1) {
		t.Fatal("client should not be quarantined")
	}
}

func TestScreenClipNorms(t *testing.T) {
	sc := NewScreen(ScreenConfig{ClipNorms: true, MinHistory: 2, NormMultiple: 2, RejectMultiple: 4})
	prev := []float64{0, 0}

	// Calibration round: three accepted norm-1 deltas build the history.
	kept, rep := sc.Apply(0, prev, mkUpdates(
		[]float64{1, 0},
		[]float64{0, 1},
		[]float64{1, 0},
	))
	if len(kept) != 3 || len(rep.Clipped) != 0 {
		t.Fatalf("calibration round: %+v", rep)
	}

	// Norm 3 exceeds the clip bound (2x median 1) but not the reject bound
	// (4x): the update survives, scaled down to the bound.
	in := &Update{ClientID: 9, State: []float64{3, 0}, NumSamples: 1}
	kept, rep = sc.Apply(1, prev, []*Update{in})
	if len(kept) != 1 || len(rep.Clipped) != 1 {
		t.Fatalf("clip round: %+v", rep)
	}
	if norm := DeltaNorm(prev, kept[0].State); math.Abs(norm-2) > 1e-9 {
		t.Fatalf("clipped norm = %g, want 2", norm)
	}
	if in.State[0] != 3 {
		t.Fatal("input update must not be mutated")
	}

	// Norm 10 exceeds the reject bound: dropped as an offense.
	kept, rep = sc.Apply(2, prev, []*Update{{ClientID: 8, State: []float64{10, 0}, NumSamples: 1}})
	if len(kept) != 0 || len(rep.Rejected) != 1 {
		t.Fatalf("reject round: %+v", rep)
	}
	if !strings.Contains(rep.Rejected[0].Reason, "delta norm") {
		t.Fatalf("reason = %q", rep.Rejected[0].Reason)
	}
}

func TestServerAggregateWithScreen(t *testing.T) {
	srv, err := NewServer([]float64{0, 0}, &noneDefense{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetScreen(NewScreen(ScreenConfig{}))

	// A NaN bomb among honest updates: the survivors aggregate, the report
	// records the rejection, and the global state stays finite.
	err = srv.Aggregate([]*Update{
		{ClientID: 0, State: []float64{2, 2}, NumSamples: 1},
		{ClientID: 1, State: []float64{4, 4}, NumSamples: 1},
		{ClientID: 2, State: []float64{math.NaN(), math.Inf(1)}, NumSamples: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	state := srv.GlobalState()
	if state[0] != 3 || state[1] != 3 {
		t.Fatalf("global = %v, want [3 3]", state)
	}
	rep, ok := srv.LastScreenReport()
	if !ok || len(rep.Rejected) != 1 || rep.Rejected[0].ClientID != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if got := srv.ScreenReports(); len(got) != 1 {
		t.Fatalf("reports = %d", len(got))
	}

	// A round where nothing survives fails without touching the state.
	err = srv.Aggregate([]*Update{
		{ClientID: 0, State: []float64{math.NaN(), 0}, NumSamples: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "survived screening") {
		t.Fatalf("want screening failure, got %v", err)
	}
	if got := srv.GlobalState(); got[0] != 3 {
		t.Fatalf("failed round must not move the state: %v", got)
	}
}

func TestServerAggregateValidatesLengthWithoutScreen(t *testing.T) {
	srv, err := NewServer([]float64{0, 0}, &noneDefense{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = srv.Aggregate([]*Update{
		{ClientID: 0, State: []float64{1, 1}, NumSamples: 1},
		{ClientID: 1, State: []float64{1}, NumSamples: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "want 2") {
		t.Fatalf("want a length validation error, got %v", err)
	}
	if srv.Round() != 0 {
		t.Fatal("failed round must not advance the counter")
	}
}

// FuzzScreen feeds arbitrary byte payloads reinterpreted as float64 vectors
// through the screen: whatever the bits, Apply must not panic and no
// non-finite coordinate may survive into the kept set.
func FuzzScreen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(1.5))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(math.Inf(-1)))
	f.Add(buf)

	f.Fuzz(func(t *testing.T, raw []byte) {
		state := make([]float64, 0, len(raw)/8)
		for i := 0; i+8 <= len(raw); i += 8 {
			state = append(state, math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])))
		}
		prev := make([]float64, len(state))
		sc := NewScreen(ScreenConfig{ClipNorms: true})
		kept, rep := sc.Apply(0, prev, []*Update{
			{ClientID: 1, State: state, NumSamples: 1},
		})
		for _, u := range kept {
			for i, v := range u.State {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value %g at %d survived screening", v, i)
				}
			}
		}
		if len(kept)+len(rep.Rejected) != 1 {
			t.Fatalf("update neither kept nor rejected: %+v", rep)
		}
	})
}
