package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Span describes the flat-vector location of one logical model "layer" in the
// sense the paper uses the word: a weight-bearing layer (convolution or dense)
// together with its attached normalization parameters. DINAR's per-layer
// obfuscation and the per-layer leakage analysis address layers through
// spans.
type Span struct {
	// Index is the logical layer index, starting at 0 for the first
	// weight-bearing layer.
	Index int
	// Name is the primitive layer's name.
	Name string
	// Offset is the starting position in the model's parameter vector.
	Offset int
	// Len is the number of parameters covered.
	Len int
	// InitScale is the standard deviation of the layer's weight initializer;
	// obfuscators draw replacement values from N(0, InitScale²).
	InitScale float64
	// Bypassable marks layers that sit on a residual main path: a skip
	// connection carries the signal around them, so obfuscating such a layer
	// alone does NOT disable the model (DINAR must not pick one as its
	// obfuscation target).
	Bypassable bool
}

// Model is a sequential neural network. It owns an ordered list of layers and
// provides whole-model forward/backward passes plus flat-vector parameter
// access used by federated aggregation and the defense pipeline.
type Model struct {
	layers []Layer

	prims      []Layer // flattened primitive layers (composites expanded)
	bypassable []bool  // aligned with prims: true inside residual blocks
	spans      []Span
	numParams  int
	numState   int
}

// NewModel builds a model from the given layers and precomputes its parameter
// layout.
func NewModel(layers ...Layer) *Model {
	m := &Model{layers: layers}
	m.prims, m.bypassable = flattenLayers(layers, false)
	m.buildSpans()
	return m
}

// SkipWrapped is implemented by composite layers whose sub-layers are
// bypassed by a skip connection (residual blocks).
type SkipWrapped interface {
	Composite
	// SkipWrapped marks the composite's sub-layers as bypassable.
	SkipWrapped()
}

func flattenLayers(layers []Layer, bypass bool) ([]Layer, []bool) {
	var out []Layer
	var flags []bool
	for _, l := range layers {
		if c, ok := l.(Composite); ok {
			inner := bypass
			if _, skip := l.(SkipWrapped); skip {
				inner = true
			}
			ls, fs := flattenLayers(c.Sublayers(), inner)
			out = append(out, ls...)
			flags = append(flags, fs...)
			continue
		}
		out = append(out, l)
		flags = append(flags, bypass)
	}
	return out, flags
}

// buildSpans assigns flat-vector offsets. BatchNorm parameters are merged into
// the span of the preceding weight-bearing layer, matching the paper's
// layer counting (e.g. "a neural network with 8 convolutional layers" for the
// VGG11/CelebA analysis in Fig. 4).
func (m *Model) buildSpans() {
	off := 0
	for i, l := range m.prims {
		n := numel(l.Params())
		if n == 0 {
			continue
		}
		if _, isBN := l.(*BatchNorm); isBN && len(m.spans) > 0 {
			m.spans[len(m.spans)-1].Len += n
			off += n
			continue
		}
		scale := 0.05
		if init, ok := l.(Initializer); ok {
			scale = init.InitScale()
		}
		m.spans = append(m.spans, Span{
			Index:      len(m.spans),
			Name:       l.Name(),
			Offset:     off,
			Len:        n,
			InitScale:  scale,
			Bypassable: m.bypassable[i],
		})
		off += n
	}
	m.numParams = off
	m.numState = off
	for _, l := range m.prims {
		if bn, ok := l.(*BatchNorm); ok {
			mean, variance := bn.RunningStats()
			m.numState += mean.Len() + variance.Len()
		}
	}
}

// Clone returns a deep copy of the model: parameters, gradients, and
// normalization running statistics are copied; layer workspaces and forward
// caches start fresh, so the clone can train concurrently with the original.
func (m *Model) Clone() *Model {
	layers := make([]Layer, len(m.layers))
	for i, l := range m.layers {
		c, ok := l.(cloneable)
		if !ok {
			panic(fmt.Sprintf("nn: layer %s does not support cloning", l.Name()))
		}
		layers[i] = c.cloneLayer()
	}
	return NewModel(layers...)
}

// Layers returns the model's top-level layers.
func (m *Model) Layers() []Layer { return m.layers }

// Spans returns the model's logical layer spans (one per weight-bearing
// layer). The returned slice is shared; callers must not modify it.
func (m *Model) Spans() []Span { return m.spans }

// NumLayers returns the number of logical (weight-bearing) layers.
func (m *Model) NumLayers() int { return len(m.spans) }

// NumParams returns the total number of trainable parameters.
func (m *Model) NumParams() int { return m.numParams }

// NumState returns the length of the full state vector (parameters plus
// normalization running statistics).
func (m *Model) NumState() int { return m.numState }

// Forward runs a full forward pass.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs a full backward pass from the loss gradient with respect to
// the model output, populating parameter gradients.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.layers) - 1; i >= 0; i-- {
		grad = m.layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameter tensors in span order.
func (m *Model) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range m.prims {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns all gradient tensors aligned with Params.
func (m *Model) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range m.prims {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// buffers returns non-trainable state tensors (BatchNorm running statistics).
func (m *Model) buffers() []*tensor.Tensor {
	var bs []*tensor.Tensor
	for _, l := range m.prims {
		if bn, ok := l.(*BatchNorm); ok {
			mean, variance := bn.RunningStats()
			bs = append(bs, mean, variance)
		}
	}
	return bs
}

// ParamVector returns a copy of all trainable parameters as a flat vector in
// span order.
func (m *Model) ParamVector() []float64 {
	out := make([]float64, 0, m.numParams)
	for _, p := range m.Params() {
		out = append(out, p.Data()...)
	}
	return out
}

// SetParamVector loads trainable parameters from a flat vector.
func (m *Model) SetParamVector(vec []float64) error {
	if len(vec) != m.numParams {
		return fmt.Errorf("nn: param vector length %d, model has %d", len(vec), m.numParams)
	}
	off := 0
	for _, p := range m.Params() {
		copy(p.Data(), vec[off:off+p.Len()])
		off += p.Len()
	}
	return nil
}

// GradVector returns a copy of all parameter gradients as a flat vector
// aligned with ParamVector.
func (m *Model) GradVector() []float64 {
	out := make([]float64, 0, m.numParams)
	for _, g := range m.Grads() {
		out = append(out, g.Data()...)
	}
	return out
}

// StateVector returns a copy of the full model state: parameters followed by
// normalization running statistics. This is what FL clients exchange with the
// server, so that evaluation-mode behaviour transfers too.
func (m *Model) StateVector() []float64 {
	out := make([]float64, 0, m.numState)
	for _, p := range m.Params() {
		out = append(out, p.Data()...)
	}
	for _, b := range m.buffers() {
		out = append(out, b.Data()...)
	}
	return out
}

// SetStateVector loads the full model state from a flat vector produced by
// StateVector.
func (m *Model) SetStateVector(vec []float64) error {
	if len(vec) != m.numState {
		return fmt.Errorf("nn: state vector length %d, model has %d", len(vec), m.numState)
	}
	off := 0
	for _, p := range m.Params() {
		copy(p.Data(), vec[off:off+p.Len()])
		off += p.Len()
	}
	for _, b := range m.buffers() {
		copy(b.Data(), vec[off:off+b.Len()])
		off += b.Len()
	}
	return nil
}

// LayerGradVectors splits the current gradients by logical layer span,
// returning one flat gradient slice per layer. Used by the per-layer leakage
// analysis (§3).
func (m *Model) LayerGradVectors() [][]float64 {
	flat := m.GradVector()
	out := make([][]float64, len(m.spans))
	for i, s := range m.spans {
		out[i] = flat[s.Offset : s.Offset+s.Len]
	}
	return out
}

// ZeroGrads clears all parameter gradients.
func (m *Model) ZeroGrads() {
	for _, g := range m.Grads() {
		g.Zero()
	}
}

// Describe returns a one-line-per-layer architecture summary.
func (m *Model) Describe() string {
	s := ""
	for i, sp := range m.spans {
		s += fmt.Sprintf("layer %d: %s (%d params at %d)\n", i, sp.Name, sp.Len, sp.Offset)
	}
	return s + fmt.Sprintf("total: %d params, %d state", m.numParams, m.numState)
}
