package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// benchLayerStep benchmarks one steady-state Forward+Backward step. The
// warm-up call outside the timer sizes the layer workspaces, so the reported
// allocs/op reflect the hot path only.
func benchLayerStep(b *testing.B, layer Layer, x *tensor.Tensor) {
	b.Helper()
	out := layer.Forward(x, true)
	g := tensor.Randn(rand.New(rand.NewSource(82)), 0, 1, out.Shape()...)
	layer.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x, true)
		layer.Backward(g)
	}
}

func BenchmarkDenseStep(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	layer := NewDense(256, 128, rng)
	benchLayerStep(b, layer, tensor.Randn(rng, 0, 1, 32, 256))
}

func BenchmarkConv2DStep(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	layer := NewConv2D(8, 16, 3, 1, 1, rng)
	benchLayerStep(b, layer, tensor.Randn(rng, 0, 1, 8, 8, 16, 16))
}

func BenchmarkConv1DStep(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	layer := NewConv1D(4, 8, 9, 4, 4, rng)
	benchLayerStep(b, layer, tensor.Randn(rng, 0, 1, 8, 4, 256))
}

func BenchmarkBatchNormStep(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	layer := NewBatchNorm(16)
	benchLayerStep(b, layer, tensor.Randn(rng, 0, 1, 8, 16, 16, 16))
}

func BenchmarkResidualStep(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	layer := NewResidual(8, 16, 2, rng)
	benchLayerStep(b, layer, tensor.Randn(rng, 0, 1, 4, 8, 16, 16))
}

func BenchmarkModelStep(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	m := NewModel(
		NewConv2D(3, 8, 3, 1, 1, rng),
		NewBatchNorm(8),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(8*8*8, 10, rng),
	)
	x := tensor.Randn(rng, 0, 1, 16, 3, 16, 16)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 10
	}
	var loss SoftmaxCrossEntropy

	out := m.Forward(x, true)
	res, err := loss.Eval(out, labels)
	if err != nil {
		b.Fatal(err)
	}
	m.Backward(res.Grad)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := m.Forward(x, true)
		res, err := loss.Eval(out, labels)
		if err != nil {
			b.Fatal(err)
		}
		m.Backward(res.Grad)
	}
}
