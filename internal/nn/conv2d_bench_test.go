package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// BenchmarkConv2DDirectVsIm2col measures the per-shape dispatch choices at
// the tracked conv2d_step shape plus a wider mid shape: the direct vs im2col
// inference forward, and the training step with the fused vs materialized
// input-gradient stage. The committed conv2dDirectBudget default comes from
// this comparison (see README "Performance").
func BenchmarkConv2DDirectVsIm2col(b *testing.B) {
	shapes := []struct {
		name                      string
		inC, outC, k, stride, pad int
		batch, h, w               int
	}{
		{"bench8x16x16", 8, 16, 3, 1, 1, 8, 16, 16},
		{"mid16x8x8", 16, 32, 3, 1, 1, 8, 8, 8},
	}
	modes := []struct {
		name   string
		budget int
	}{
		{"direct", 1 << 30},
		{"im2col", -1},
	}
	for _, sh := range shapes {
		for _, mode := range modes {
			prev := SetConv2DDirectBudget(mode.budget)
			rng := rand.New(rand.NewSource(91))
			layer := NewConv2D(sh.inC, sh.outC, sh.k, sh.stride, sh.pad, rng)
			x := tensor.Randn(rng, 0, 1, sh.batch, sh.inC, sh.h, sh.w)
			out := layer.Forward(x, true)
			g := tensor.Randn(rand.New(rand.NewSource(92)), 0, 1, out.Shape()...)
			layer.Backward(g)
			layer.Forward(x, false)
			b.Run(sh.name+"/"+mode.name+"/infer", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					layer.Forward(x, false)
				}
			})
			b.Run(sh.name+"/"+mode.name+"/step", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					layer.Forward(x, true)
					layer.Backward(g)
				}
			})
			SetConv2DDirectBudget(prev)
		}
	}
}
