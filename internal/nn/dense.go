package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Activation selects the optional activation fused into a Dense layer's
// forward pass.
type Activation int

// Fusable dense activations.
const (
	ActNone Activation = iota
	ActReLU
	ActTanh
)

// String returns the activation's short name.
func (a Activation) String() string {
	switch a {
	case ActReLU:
		return "relu"
	case ActTanh:
		return "tanh"
	default:
		return "none"
	}
}

// Dense is a fully connected layer: y = act(xWᵀ + b) with W of shape
// [out, in] and act one of identity, ReLU, or Tanh.
//
// The forward and backward passes are transpose-free (MatMulTransB /
// MatMulTransA against W directly) and write into per-layer workspace
// tensors, so a steady-state training step performs no allocations. When an
// activation is fused, the bias add and the activation run in one pass over
// the output tile instead of a separate layer re-traversing the tensor; the
// per-element operation sequence (GEMM result + bias, then the activation)
// is exactly the Dense→ReLU/Tanh composition's, so fused results are
// bit-identical to the unfused stack.
type Dense struct {
	In, Out int
	Act     Activation

	w, b   *tensor.Tensor
	gw, gb *tensor.Tensor

	lastX *tensor.Tensor
	// lastOut retains the activated forward output for the Tanh gradient
	// (dtanh = 1 - out²); mask retains the ReLU sign decisions.
	lastOut *tensor.Tensor
	mask    []bool
	ws      tensor.Workspace
}

// Dense workspace slots.
const (
	denseSlotOut = iota
	denseSlotGradIn
	denseSlotGradAct
)

var (
	_ Layer       = (*Dense)(nil)
	_ Initializer = (*Dense)(nil)
)

// NewDense returns a dense layer with He-initialized weights and no fused
// activation.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	return NewDenseAct(in, out, ActNone, rng)
}

// NewDenseAct returns a dense layer with He-initialized weights and the given
// activation fused into its forward pass. It draws exactly the same values
// from rng as NewDense, and the fused layer spans the same parameters, so
// swapping a NewDense+NewReLU/NewTanh pair for NewDenseAct leaves a model's
// seeded initialization and logical layer numbering unchanged.
func NewDenseAct(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		Act: act,
		w:   tensor.New(out, in),
		b:   tensor.New(out),
		gw:  tensor.New(out, in),
		gb:  tensor.New(out),
	}
	d.ResetParams(rng)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string {
	if d.Act == ActNone {
		return fmt.Sprintf("dense(%d->%d)", d.In, d.Out)
	}
	return fmt.Sprintf("dense(%d->%d)+%s", d.In, d.Out, d.Act)
}

// InitScale implements Initializer.
func (d *Dense) InitScale() float64 { return math.Sqrt(2.0 / float64(d.In)) }

// ResetParams implements Initializer.
func (d *Dense) ResetParams(rng *rand.Rand) {
	std := d.InitScale()
	for i, data := 0, d.w.Data(); i < len(data); i++ {
		data[i] = rng.NormFloat64() * std
	}
	d.b.Zero()
}

// cloneLayer implements layer cloning: parameters are deep-copied, the
// workspace starts fresh so the clone never aliases this layer's scratch.
func (d *Dense) cloneLayer() Layer {
	return &Dense{
		In:  d.In,
		Out: d.Out,
		Act: d.Act,
		w:   d.w.Clone(),
		b:   d.b.Clone(),
		gw:  d.gw.Clone(),
		gb:  d.gb.Clone(),
	}
}

// Forward implements Layer. x has shape [B, In]. The returned tensor is a
// workspace buffer valid until the next Forward on this layer.
func (d *Dense) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: dense %s got input %v", d.Name(), x.Shape()))
	}
	d.lastX = x
	batch := x.Dim(0)
	// out = x × Wᵀ, without materializing Wᵀ.
	out := d.ws.Get2D(denseSlotOut, batch, d.Out)
	if err := tensor.MatMulTransBInto(out, x, d.w); err != nil {
		panic(err)
	}
	od, bd := out.Data(), d.b.Data()
	if d.Act == ActReLU {
		if cap(d.mask) < len(od) {
			d.mask = make([]bool, len(od))
		}
		d.mask = d.mask[:len(od)]
	}
	// Bias and activation in one pass. Rows are independent and every
	// element's operation sequence is fixed, so the pool split over rows is
	// bit-identical to the serial loop (and to the unfused two-layer stack).
	cost := d.Out
	if d.Act == ActTanh {
		cost *= tanhOpCost
	}
	g := parallel.Grain(cost)
	if parallel.Chunks(batch, g) <= 1 {
		d.biasActRange(od, bd, 0, batch)
	} else {
		parallel.For(batch, g, func(lo, hi int) {
			d.biasActRange(od, bd, lo, hi)
		})
	}
	if d.Act == ActTanh {
		d.lastOut = out
	}
	return out
}

// biasActRange applies bias and the fused activation to output rows
// [lo, hi). Per element this performs exactly the composition's operations:
// one add, then the activation's compare-or-tanh.
func (d *Dense) biasActRange(od, bd []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := od[i*d.Out : (i+1)*d.Out]
		switch d.Act {
		case ActReLU:
			mrow := d.mask[i*d.Out : (i+1)*d.Out]
			for j, v := range row {
				if v += bd[j]; v > 0 {
					row[j] = v
					mrow[j] = true
				} else {
					row[j] = 0
					mrow[j] = false
				}
			}
		case ActTanh:
			for j, v := range row {
				row[j] = math.Tanh(v + bd[j])
			}
		default:
			for j := range row {
				row[j] += bd[j]
			}
		}
	}
}

// Backward implements Layer. The returned tensor is a workspace buffer valid
// until the next Backward on this layer.
func (d *Dense) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.lastX == nil {
		panic("nn: dense Backward before Forward")
	}
	batch := gradOut.Dim(0)
	// Fused activations first map gradOut through the activation gradient —
	// the same elementwise kernels the standalone layers run — then the
	// unchanged dense backward consumes the result.
	if d.Act != ActNone {
		ga := d.ws.Get2D(denseSlotGradAct, batch, d.Out)
		gad, god := ga.Data(), gradOut.Data()
		g := parallel.Grain(1)
		if parallel.Chunks(len(gad), g) <= 1 {
			d.actGradRange(gad, god, 0, len(gad))
		} else {
			parallel.For(len(gad), g, func(lo, hi int) {
				d.actGradRange(gad, god, lo, hi)
			})
		}
		gradOut = ga
	}
	// gw = gradOutᵀ × x => [Out, In], without materializing gradOutᵀ.
	if err := tensor.MatMulTransAInto(d.gw, gradOut, d.lastX); err != nil {
		panic(err)
	}
	// gb = column sums of gradOut.
	d.gb.Zero()
	god, gbd := gradOut.Data(), d.gb.Data()
	for i := 0; i < batch; i++ {
		row := god[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			gbd[j] += v
		}
	}
	// gradIn = gradOut × W => [B, In]
	gradIn := d.ws.Get2D(denseSlotGradIn, batch, d.In)
	if err := tensor.MatMulInto(gradIn, gradOut, d.w); err != nil {
		panic(err)
	}
	return gradIn
}

// actGradRange maps upstream gradients through the fused activation's
// derivative for flat elements [lo, hi).
func (d *Dense) actGradRange(dst, god []float64, lo, hi int) {
	switch d.Act {
	case ActReLU:
		reluBackwardRange(dst, god, d.mask, lo, hi)
	case ActTanh:
		tanhBackwardRange(dst, god, d.lastOut.Data(), lo, hi)
	}
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.w, d.b} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.gw, d.gb} }
