package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = xWᵀ + b with W of shape [out, in].
//
// The forward and backward passes are transpose-free (MatMulTransB /
// MatMulTransA against W directly) and write into per-layer workspace
// tensors, so a steady-state training step performs no allocations.
type Dense struct {
	In, Out int

	w, b   *tensor.Tensor
	gw, gb *tensor.Tensor

	lastX *tensor.Tensor
	ws    tensor.Workspace
}

// Dense workspace slots.
const (
	denseSlotOut = iota
	denseSlotGradIn
)

var (
	_ Layer       = (*Dense)(nil)
	_ Initializer = (*Dense)(nil)
)

// NewDense returns a dense layer with He-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In:  in,
		Out: out,
		w:   tensor.New(out, in),
		b:   tensor.New(out),
		gw:  tensor.New(out, in),
		gb:  tensor.New(out),
	}
	d.ResetParams(rng)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// InitScale implements Initializer.
func (d *Dense) InitScale() float64 { return math.Sqrt(2.0 / float64(d.In)) }

// ResetParams implements Initializer.
func (d *Dense) ResetParams(rng *rand.Rand) {
	std := d.InitScale()
	for i, data := 0, d.w.Data(); i < len(data); i++ {
		data[i] = rng.NormFloat64() * std
	}
	d.b.Zero()
}

// cloneLayer implements layer cloning: parameters are deep-copied, the
// workspace starts fresh so the clone never aliases this layer's scratch.
func (d *Dense) cloneLayer() Layer {
	return &Dense{
		In:  d.In,
		Out: d.Out,
		w:   d.w.Clone(),
		b:   d.b.Clone(),
		gw:  d.gw.Clone(),
		gb:  d.gb.Clone(),
	}
}

// Forward implements Layer. x has shape [B, In]. The returned tensor is a
// workspace buffer valid until the next Forward on this layer.
func (d *Dense) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: dense %s got input %v", d.Name(), x.Shape()))
	}
	d.lastX = x
	batch := x.Dim(0)
	// out = x × Wᵀ, without materializing Wᵀ.
	out := d.ws.Get2D(denseSlotOut, batch, d.Out)
	if err := tensor.MatMulTransBInto(out, x, d.w); err != nil {
		panic(err)
	}
	od, bd := out.Data(), d.b.Data()
	for i := 0; i < batch; i++ {
		row := od[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return out
}

// Backward implements Layer. The returned tensor is a workspace buffer valid
// until the next Backward on this layer.
func (d *Dense) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.lastX == nil {
		panic("nn: dense Backward before Forward")
	}
	batch := gradOut.Dim(0)
	// gw = gradOutᵀ × x => [Out, In], without materializing gradOutᵀ.
	if err := tensor.MatMulTransAInto(d.gw, gradOut, d.lastX); err != nil {
		panic(err)
	}
	// gb = column sums of gradOut.
	d.gb.Zero()
	god, gbd := gradOut.Data(), d.gb.Data()
	for i := 0; i < batch; i++ {
		row := god[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			gbd[j] += v
		}
	}
	// gradIn = gradOut × W => [B, In]
	gradIn := d.ws.Get2D(denseSlotGradIn, batch, d.In)
	if err := tensor.MatMulInto(gradIn, gradOut, d.w); err != nil {
		panic(err)
	}
	return gradIn
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.w, d.b} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.gw, d.gb} }
