package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// BatchNorm normalizes activations per channel (dimension 1) over all other
// axes. It supports dense [B, F], 1-D conv [B, C, L], and 2-D conv
// [B, C, H, W] inputs. Training mode uses batch statistics and updates
// exponential running statistics; evaluation mode uses the running statistics.
type BatchNorm struct {
	C        int
	Eps      float64
	Momentum float64

	gamma, beta *tensor.Tensor
	gGamma      *tensor.Tensor
	gBeta       *tensor.Tensor

	runMean, runVar *tensor.Tensor

	// forward cache
	lastShape []int
	xhat      []float64
	invStd    []float64
	meanBuf   []float64
	varBuf    []float64
	ws        tensor.Workspace
}

// BatchNorm workspace slots.
const (
	bnSlotOut = iota
	bnSlotGradIn
)

var (
	_ Layer       = (*BatchNorm)(nil)
	_ Initializer = (*BatchNorm)(nil)
)

// NewBatchNorm returns a batch-normalization layer over c channels.
func NewBatchNorm(c int) *BatchNorm {
	b := &BatchNorm{
		C:        c,
		Eps:      1e-5,
		Momentum: 0.1,
		gamma:    tensor.Full(1, c),
		beta:     tensor.New(c),
		gGamma:   tensor.New(c),
		gBeta:    tensor.New(c),
		runMean:  tensor.New(c),
		runVar:   tensor.Full(1, c),
	}
	return b
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return fmt.Sprintf("batchnorm(%d)", b.C) }

// InitScale implements Initializer. BatchNorm's "random" re-initialization
// used by obfuscation draws gamma around 1 and beta around 0.
func (b *BatchNorm) InitScale() float64 { return 0.1 }

// ResetParams implements Initializer.
func (b *BatchNorm) ResetParams(rng *rand.Rand) {
	gd, bd := b.gamma.Data(), b.beta.Data()
	for i := range gd {
		gd[i] = 1
		bd[i] = 0
	}
	_ = rng // deterministic reset: gamma=1, beta=0
}

// RunningStats returns the running mean and variance tensors (live views;
// serialized alongside parameters by the model's state codec).
func (b *BatchNorm) RunningStats() (mean, variance *tensor.Tensor) {
	return b.runMean, b.runVar
}

// cloneLayer implements layer cloning: parameters and running statistics are
// deep-copied, caches and workspace start fresh.
func (b *BatchNorm) cloneLayer() Layer {
	return &BatchNorm{
		C:        b.C,
		Eps:      b.Eps,
		Momentum: b.Momentum,
		gamma:    b.gamma.Clone(),
		beta:     b.beta.Clone(),
		gGamma:   b.gGamma.Clone(),
		gBeta:    b.gBeta.Clone(),
		runMean:  b.runMean.Clone(),
		runVar:   b.runVar.Clone(),
	}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() < 2 || x.Dim(1) != b.C {
		panic(fmt.Sprintf("nn: %s got input %v", b.Name(), x.Shape()))
	}
	b.lastShape = recordShape(b.lastShape, x)
	batch := x.Dim(0)
	spatial := x.Len() / (batch * b.C)

	if cap(b.meanBuf) < b.C {
		b.meanBuf = make([]float64, b.C)
		b.varBuf = make([]float64, b.C)
	}
	mean := b.meanBuf[:b.C]
	variance := b.varBuf[:b.C]
	xd := x.Data()
	if train {
		// Batch statistics reduce over (batch, spatial) per channel, so the
		// fan-out is across channels: every channel's sum keeps its serial
		// accumulation order and parallel results stay bit-identical.
		g := parallel.Grain(2 * batch * spatial)
		if parallel.Chunks(b.C, g) <= 1 {
			bnStatsRange(xd, mean, variance, 0, b.C, batch, b.C, spatial)
		} else {
			parallel.For(b.C, g, func(lo, hi int) {
				bnStatsRange(xd, mean, variance, lo, hi, batch, b.C, spatial)
			})
		}
		rm, rv := b.runMean.Data(), b.runVar.Data()
		for c := 0; c < b.C; c++ {
			rm[c] = (1-b.Momentum)*rm[c] + b.Momentum*mean[c]
			rv[c] = (1-b.Momentum)*rv[c] + b.Momentum*variance[c]
		}
	} else {
		copy(mean, b.runMean.Data())
		copy(variance, b.runVar.Data())
	}

	if cap(b.xhat) < x.Len() {
		b.xhat = make([]float64, x.Len())
	}
	b.xhat = b.xhat[:x.Len()]
	if cap(b.invStd) < b.C {
		b.invStd = make([]float64, b.C)
	}
	b.invStd = b.invStd[:b.C]
	for c := 0; c < b.C; c++ {
		// Aggregation or perturbation defenses could drive a running
		// variance slightly negative; clamp to keep invStd finite.
		v := variance[c]
		if v < 0 {
			v = 0
		}
		b.invStd[c] = 1 / math.Sqrt(v+b.Eps)
	}

	out := b.ws.Get(bnSlotOut, b.lastShape...)
	od, gd, bd := out.Data(), b.gamma.Data(), b.beta.Data()
	xhat, invStd := b.xhat, b.invStd
	// Normalization is elementwise given the per-channel coefficients, so
	// it fans out over the batch dimension.
	bg := parallel.Grain(b.C * spatial)
	if parallel.Chunks(batch, bg) <= 1 {
		bnNormalizeRange(od, xd, xhat, mean, invStd, gd, bd, 0, batch, b.C, spatial)
		return out
	}
	parallel.For(batch, bg, func(lo, hi int) {
		bnNormalizeRange(od, xd, xhat, mean, invStd, gd, bd, lo, hi, b.C, spatial)
	})
	return out
}

// bnStatsRange computes batch mean and variance for channels [c0,c1),
// reducing over (batch, spatial) in ascending order — the same order as the
// serial loop, so chunked execution is bit-identical.
func bnStatsRange(xd, mean, variance []float64, c0, c1, batch, C, spatial int) {
	n := float64(batch * spatial)
	for c := c0; c < c1; c++ {
		s := 0.0
		for bi := 0; bi < batch; bi++ {
			base := (bi*C + c) * spatial
			for i := 0; i < spatial; i++ {
				s += xd[base+i]
			}
		}
		mean[c] = s / n
	}
	for c := c0; c < c1; c++ {
		s := 0.0
		for bi := 0; bi < batch; bi++ {
			base := (bi*C + c) * spatial
			for i := 0; i < spatial; i++ {
				d := xd[base+i] - mean[c]
				s += d * d
			}
		}
		variance[c] = s / n
	}
}

// bnNormalizeRange normalizes batch items [b0,b1) and caches xhat.
func bnNormalizeRange(od, xd, xhat, mean, invStd, gd, bd []float64, b0, b1, C, spatial int) {
	for bi := b0; bi < b1; bi++ {
		for c := 0; c < C; c++ {
			base := (bi*C + c) * spatial
			m, is, g, bt := mean[c], invStd[c], gd[c], bd[c]
			for i := 0; i < spatial; i++ {
				xh := (xd[base+i] - m) * is
				xhat[base+i] = xh
				od[base+i] = g*xh + bt
			}
		}
	}
}

// Backward implements Layer. It assumes the preceding Forward ran with
// train=true (batch statistics), which is always the case during training.
func (b *BatchNorm) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if b.lastShape == nil {
		panic("nn: batchnorm Backward before Forward")
	}
	batch := b.lastShape[0]
	spatial := gradOut.Len() / (batch * b.C)
	n := float64(batch * spatial)

	b.gGamma.Zero()
	b.gBeta.Zero()
	ggd, gbd := b.gGamma.Data(), b.gBeta.Data()
	god := gradOut.Data()
	xhat := b.xhat
	// The gamma/beta gradients reduce over (batch, spatial) per channel, so
	// the fan-out is across channels; each channel keeps the serial
	// batch-ascending accumulation order, so results are bit-identical.
	cg := parallel.Grain(2 * batch * spatial)
	if parallel.Chunks(b.C, cg) <= 1 {
		bnGradSumsRange(god, xhat, ggd, gbd, 0, b.C, batch, b.C, spatial)
	} else {
		parallel.For(b.C, cg, func(lo, hi int) {
			bnGradSumsRange(god, xhat, ggd, gbd, lo, hi, batch, b.C, spatial)
		})
	}

	gradIn := b.ws.Get(bnSlotGradIn, b.lastShape...)
	gid, gmd := gradIn.Data(), b.gamma.Data()
	invStd := b.invStd
	bg := parallel.Grain(b.C * spatial)
	if parallel.Chunks(batch, bg) <= 1 {
		bnGradInRange(gid, god, xhat, gmd, invStd, gbd, ggd, 0, batch, b.C, spatial, n)
		return gradIn
	}
	parallel.For(batch, bg, func(lo, hi int) {
		bnGradInRange(gid, god, xhat, gmd, invStd, gbd, ggd, lo, hi, b.C, spatial, n)
	})
	return gradIn
}

// bnGradSumsRange accumulates the beta and gamma gradients for channels
// [c0,c1). Per channel the (batch, spatial) order matches the serial loop.
func bnGradSumsRange(god, xhat, ggd, gbd []float64, c0, c1, batch, C, spatial int) {
	for c := c0; c < c1; c++ {
		sb, sg := 0.0, 0.0
		for bi := 0; bi < batch; bi++ {
			base := (bi*C + c) * spatial
			for i := 0; i < spatial; i++ {
				g := god[base+i]
				sb += g
				sg += g * xhat[base+i]
			}
		}
		gbd[c] += sb
		ggd[c] += sg
	}
}

// bnGradInRange computes the input gradient for batch items [b0,b1).
func bnGradInRange(gid, god, xhat, gmd, invStd, gbd, ggd []float64, b0, b1, C, spatial int, n float64) {
	for bi := b0; bi < b1; bi++ {
		for c := 0; c < C; c++ {
			base := (bi*C + c) * spatial
			k := gmd[c] * invStd[c]
			dbeta, dgamma := gbd[c]/n, ggd[c]/n
			for i := 0; i < spatial; i++ {
				gid[base+i] = k * (god[base+i] - dbeta - xhat[base+i]*dgamma)
			}
		}
	}
}

// Params implements Layer.
func (b *BatchNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{b.gamma, b.beta} }

// Grads implements Layer.
func (b *BatchNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{b.gGamma, b.gBeta} }
