// Package nn implements a from-scratch neural-network engine with analytic
// backpropagation. It is the deep-learning substrate for the DINAR
// reproduction: models are sequences of layers, each layer computes an exact
// forward pass and an exact gradient with respect to both its input and its
// parameters.
//
// The engine supports the four model families of the paper (ResNet20, VGG11,
// M18, 6-layer FCNN) via Dense, Conv2D, Conv1D, BatchNorm, pooling,
// activation, and residual-block layers.
//
// Shape conventions (batch-first):
//
//	dense inputs:     [B, F]
//	2-D conv inputs:  [B, C, H, W]
//	1-D conv inputs:  [B, C, L]
//
// Shape errors indicate a programming error in model construction (shapes are
// fixed once a model is built), so Forward/Backward panic on mismatch rather
// than returning errors; model builders in internal/model validate shapes at
// construction time.
package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a model.
//
// Forward consumes a batch and returns the layer output; train toggles
// training-time behaviour (e.g. batch statistics in BatchNorm). Backward
// consumes the gradient of the loss with respect to the layer output and
// returns the gradient with respect to the layer input, accumulating
// parameter gradients internally. A Backward call must be preceded by a
// Forward call on the same data.
//
// Tensors returned by Forward and Backward are per-layer workspace buffers:
// a Forward result is valid until the layer's next Forward, a Backward
// result until its next Backward. Callers that need a result to outlive the
// next pass must Clone it. Layers are consequently not safe for concurrent
// use; concurrent training loops must operate on separate Model clones.
type Layer interface {
	// Name returns a short human-readable identifier, e.g. "dense(64->10)".
	Name() string
	// Forward computes the layer output for a batch.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward computes the gradient with respect to the input and stores
	// parameter gradients (overwriting any previous gradients).
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameter tensors (possibly none).
	// The returned slice must have a stable order across calls.
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned one-to-one with Params.
	Grads() []*tensor.Tensor
}

// Initializer is implemented by layers whose parameters can be
// (re-)initialized from a random source. ResetParams draws fresh parameters
// from the layer's initialization distribution; it is used both at model
// construction and by DINAR's obfuscation (which replaces a layer's uploaded
// parameters with "random values" drawn from the same distribution).
type Initializer interface {
	ResetParams(rng *rand.Rand)
	// InitScale returns the standard deviation of the layer's weight
	// initialization distribution; obfuscators use it to generate plausible
	// random parameter values without access to the layer itself.
	InitScale() float64
}

// paramsOf concatenates the parameter counts of tensors.
func numel(ts []*tensor.Tensor) int {
	n := 0
	for _, t := range ts {
		n += t.Len()
	}
	return n
}

// cloneable is implemented by every layer in this package. cloneLayer returns
// a deep copy: parameters, gradients, and running statistics are copied;
// forward caches and workspaces start fresh so clones never share scratch
// memory with the original.
type cloneable interface {
	cloneLayer() Layer
}

// recordShape copies x's shape into dst, growing dst only when its capacity
// is too small. It lets layers remember input shapes across steps without
// the per-call allocation of Tensor.Shape.
func recordShape(dst []int, x *tensor.Tensor) []int {
	d := x.Dims()
	if cap(dst) < d {
		dst = make([]int, d)
	}
	dst = dst[:d]
	for i := range dst {
		dst[i] = x.Dim(i)
	}
	return dst
}
