package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestBatchNormTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bn := NewBatchNorm(3)
	// Feed several training batches with mean 2, std 3.
	for i := 0; i < 50; i++ {
		x := tensor.Randn(rng, 2, 3, 8, 3)
		bn.Forward(x, true)
	}
	// Training-mode outputs are normalized per batch: mean ~0.
	x := tensor.Randn(rng, 2, 3, 64, 3)
	out := bn.Forward(x, true)
	if m := out.Mean(); math.Abs(m) > 0.05 {
		t.Fatalf("train-mode output mean = %v", m)
	}
	// Eval mode uses running statistics: a batch from the same
	// distribution also normalizes to ~0 mean, ~1 std.
	out = bn.Forward(x, false)
	if m := out.Mean(); math.Abs(m) > 0.2 {
		t.Fatalf("eval-mode output mean = %v", m)
	}
	// Running variance is an EMA of per-batch variances (small batches
	// underestimate σ²), so the normalized output variance sits near but not
	// exactly at 1.
	if v := out.Variance(); v < 0.5 || v > 1.6 {
		t.Fatalf("eval-mode output variance = %v", v)
	}
}

func TestBatchNormNegativeRunningVarianceClamped(t *testing.T) {
	bn := NewBatchNorm(2)
	_, variance := bn.RunningStats()
	variance.Set(-0.5, 0) // aggregation/perturbation artifact
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	out := bn.Forward(x, false)
	for _, v := range out.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("negative running variance produced %v", v)
		}
	}
}

func TestReLUZeroesNegatives(t *testing.T) {
	r := NewReLU()
	x := tensor.MustFromSlice([]float64{-1, 0, 2}, 1, 3)
	out := r.Forward(x, true)
	want := []float64{0, 0, 2}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("relu[%d] = %v", i, out.Data()[i])
		}
	}
	// Input is not mutated.
	if x.Data()[0] != -1 {
		t.Fatal("ReLU mutated its input")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 0, 1, 2, 3, 4, 5)
	out := f.Forward(x, true)
	if out.Dim(0) != 2 || out.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", out.Shape())
	}
	back := f.Backward(out)
	if back.Dims() != 4 || back.Dim(3) != 5 {
		t.Fatalf("unflatten shape %v", back.Shape())
	}
}

func TestConv2DOutSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D(1, 1, 3, 2, 1, rng)
	oh, ow := c.OutSize(16, 16)
	if oh != 8 || ow != 8 {
		t.Fatalf("OutSize = %dx%d", oh, ow)
	}
}

func TestConv1DOutLen(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv1D(1, 4, 16, 4, 6, rng)
	if got := c.OutLen(256); got != 64 {
		t.Fatalf("OutLen = %d", got)
	}
}

func TestLayerNames(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	layers := []Layer{
		NewDense(3, 4, rng),
		NewConv2D(1, 2, 3, 1, 1, rng),
		NewConv1D(1, 2, 3, 1, 1, rng),
		NewBatchNorm(4),
		NewReLU(),
		NewTanh(),
		NewFlatten(),
		NewMaxPool2D(2),
		NewMaxPool1D(2),
		NewAvgPool2D(2),
		NewGlobalAvgPool(),
		NewResidual(2, 2, 1, rng),
	}
	seen := make(map[string]bool)
	for _, l := range layers {
		name := l.Name()
		if name == "" {
			t.Fatalf("%T has empty name", l)
		}
		if seen[name] {
			t.Fatalf("duplicate layer name %q", name)
		}
		seen[name] = true
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	tests := []struct {
		name  string
		layer Layer
	}{
		{"dense", NewDense(2, 2, rand.New(rand.NewSource(1)))},
		{"conv2d", NewConv2D(1, 1, 3, 1, 1, rand.New(rand.NewSource(1)))},
		{"conv1d", NewConv1D(1, 1, 3, 1, 1, rand.New(rand.NewSource(1)))},
		{"tanh", NewTanh()},
		{"batchnorm", NewBatchNorm(2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s Backward before Forward did not panic", tt.name)
				}
			}()
			tt.layer.Backward(tensor.New(1, 2))
		})
	}
}

func TestForwardShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tests := []struct {
		name  string
		layer Layer
		input *tensor.Tensor
	}{
		{"dense wrong width", NewDense(4, 2, rng), tensor.New(1, 3)},
		{"conv2d wrong channels", NewConv2D(3, 1, 3, 1, 1, rng), tensor.New(1, 2, 8, 8)},
		{"conv1d wrong rank", NewConv1D(1, 1, 3, 1, 1, rng), tensor.New(2, 4)},
		{"batchnorm wrong channels", NewBatchNorm(3), tensor.New(2, 4)},
		{"maxpool2d wrong rank", NewMaxPool2D(2), tensor.New(2, 4)},
		{"gap wrong rank", NewGlobalAvgPool(), tensor.New(2, 4)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tt.name)
				}
			}()
			tt.layer.Forward(tt.input, true)
		})
	}
}

// Property: StateVector/SetStateVector is an exact round trip for random
// states.
func TestQuickStateVectorRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModel(
			NewDense(6, 5, rng),
			NewBatchNorm(5),
			NewTanh(),
			NewDense(5, 3, rng),
		)
		state := make([]float64, m.NumState())
		for i := range state {
			state[i] = rng.NormFloat64()
		}
		if err := m.SetStateVector(state); err != nil {
			return false
		}
		got := m.StateVector()
		for i := range state {
			if got[i] != state[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: forward passes are deterministic given fixed parameters and
// inputs.
func TestQuickForwardDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModel(
			NewConv2D(1, 2, 3, 1, 1, rng),
			NewReLU(),
			NewFlatten(),
			NewDense(2*4*4, 3, rng),
		)
		x := tensor.Randn(rng, 0, 1, 2, 1, 4, 4)
		a := m.Forward(x, false).Clone()
		b := m.Forward(x, false)
		for i := range a.Data() {
			if a.Data()[i] != b.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualShapePreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewResidual(4, 4, 1, rng)
	x := tensor.Randn(rng, 0, 1, 2, 4, 8, 8)
	out := r.Forward(x, true)
	if !out.SameShape(x) {
		t.Fatalf("identity residual changed shape: %v", out.Shape())
	}
	r2 := NewResidual(4, 8, 2, rng)
	out2 := r2.Forward(x, true)
	if out2.Dim(1) != 8 || out2.Dim(2) != 4 {
		t.Fatalf("projection residual shape: %v", out2.Shape())
	}
}
