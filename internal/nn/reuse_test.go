package nn

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// reuseCase describes one layer under workspace-reuse testing: a same-seed
// factory (so two instances are bit-identical) and an input builder
// parameterized by batch size.
type reuseCase struct {
	name string
	mk   func(rng *rand.Rand) Layer
	dims []int // per-example input dims (batch prepended)
}

var reuseCases = []reuseCase{
	{"dense", func(r *rand.Rand) Layer { return NewDense(7, 5, r) }, []int{7}},
	{"dense+relu", func(r *rand.Rand) Layer { return NewDenseAct(7, 5, ActReLU, r) }, []int{7}},
	{"dense+tanh", func(r *rand.Rand) Layer { return NewDenseAct(7, 5, ActTanh, r) }, []int{7}},
	{"conv2d", func(r *rand.Rand) Layer { return NewConv2D(2, 3, 3, 1, 1, r) }, []int{2, 6, 6}},
	{"conv2d-strided", func(r *rand.Rand) Layer { return NewConv2D(3, 4, 3, 2, 1, r) }, []int{3, 8, 8}},
	{"conv1d", func(r *rand.Rand) Layer { return NewConv1D(2, 3, 5, 2, 2, r) }, []int{2, 12}},
	{"batchnorm-dense", func(r *rand.Rand) Layer { return NewBatchNorm(5) }, []int{5}},
	{"batchnorm-conv", func(r *rand.Rand) Layer { return NewBatchNorm(3) }, []int{3, 4, 4}},
	{"relu", func(r *rand.Rand) Layer { return NewReLU() }, []int{6}},
	{"tanh", func(r *rand.Rand) Layer { return NewTanh() }, []int{6}},
	{"maxpool2d", func(r *rand.Rand) Layer { return NewMaxPool2D(2) }, []int{2, 6, 6}},
	{"maxpool1d", func(r *rand.Rand) Layer { return NewMaxPool1D(2) }, []int{3, 8}},
	{"globalavgpool", func(r *rand.Rand) Layer { return NewGlobalAvgPool() }, []int{3, 4, 4}},
	{"avgpool2d", func(r *rand.Rand) Layer { return NewAvgPool2D(2) }, []int{2, 6, 6}},
	{"residual-identity", func(r *rand.Rand) Layer { return NewResidual(3, 3, 1, r) }, []int{3, 5, 5}},
	{"residual-projection", func(r *rand.Rand) Layer { return NewResidual(2, 4, 2, r) }, []int{2, 6, 6}},
}

func batchInput(rng *rand.Rand, batch int, dims []int) *tensor.Tensor {
	shape := append([]int{batch}, dims...)
	return tensor.Randn(rng, 0, 1, shape...)
}

// checkReuseAcrossBatches runs a layer on batch b1, then on batch b2, then on
// the b1 input again, comparing every pass bitwise against fresh same-seed
// layers that have never reused a workspace. Any stale workspace content,
// missed re-zeroing, or result aliasing across passes shows up as a mismatch.
func checkReuseAcrossBatches(t *testing.T, tc reuseCase, b1, b2 int) {
	t.Helper()
	layer := tc.mk(rand.New(rand.NewSource(41)))

	x1 := batchInput(rand.New(rand.NewSource(42)), b1, tc.dims)
	x2 := batchInput(rand.New(rand.NewSource(43)), b2, tc.dims)

	// Pass 1 on batch b1: record outputs (cloned — the raw results are
	// workspace buffers the next pass will overwrite).
	out1 := layer.Forward(x1, true).Clone()
	g1 := tensor.Randn(rand.New(rand.NewSource(44)), 0, 1, out1.Shape()...)
	grad1 := layer.Backward(g1).Clone()

	// Pass 2 on batch b2 reuses the now-dirty workspaces; a fresh layer is
	// the uncontaminated reference.
	fresh := tc.mk(rand.New(rand.NewSource(41)))
	out2 := layer.Forward(x2, true)
	wantOut2 := fresh.Forward(x2, true)
	compareBitwise(t, tc.name+" pass2 forward", out2, wantOut2)
	g2 := tensor.Randn(rand.New(rand.NewSource(45)), 0, 1, out2.Shape()...)
	grad2 := layer.Backward(g2)
	wantGrad2 := fresh.Backward(g2)
	compareBitwise(t, tc.name+" pass2 backward", grad2, wantGrad2)
	for i, g := range layer.Grads() {
		compareBitwise(t, tc.name+" pass2 param grad", g, fresh.Grads()[i])
	}

	// Pass 3 back on the b1 input must reproduce pass 1 bit-for-bit: the
	// in-between pass on a different shape must leave no trace.
	out3 := layer.Forward(x1, true)
	compareBitwise(t, tc.name+" pass3 forward", out3, out1)
	grad3 := layer.Backward(g1)
	compareBitwise(t, tc.name+" pass3 backward", grad3, grad1)
}

func compareBitwise(t *testing.T, what string, got, want *tensor.Tensor) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: length %d, want %d", what, got.Len(), want.Len())
	}
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: [%d] = %v, want %v", what, i, gd[i], wd[i])
		}
	}
}

// TestWorkspaceReuseShrinkingBatch re-runs every parametric layer on a
// smaller batch than its workspaces were sized for: buffers shrink in place
// and keep stale tails.
func TestWorkspaceReuseShrinkingBatch(t *testing.T) {
	for _, tc := range reuseCases {
		t.Run(tc.name, func(t *testing.T) { checkReuseAcrossBatches(t, tc, 4, 2) })
	}
}

// TestWorkspaceReuseGrowingBatch grows the batch instead, forcing the
// workspaces through a reallocation mid-sequence.
func TestWorkspaceReuseGrowingBatch(t *testing.T) {
	for _, tc := range reuseCases {
		t.Run(tc.name, func(t *testing.T) { checkReuseAcrossBatches(t, tc, 2, 5) })
	}
}

// TestClonedModelsTrainConcurrently trains a model and its clone on the same
// data in parallel goroutines. Run under -race this proves clones share no
// workspace or cache state; the bitwise-equal gradients prove the clone is an
// exact copy.
func TestClonedModelsTrainConcurrently(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m1 := NewModel(
		NewConv2D(1, 2, 3, 1, 1, rng),
		NewBatchNorm(2),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(2*3*3, 4, rng),
	)
	m2 := m1.Clone()

	x := tensor.Randn(rand.New(rand.NewSource(52)), 0, 1, 3, 1, 6, 6)
	labels := []int{0, 2, 3}

	run := func(m *Model) []float64 {
		var loss SoftmaxCrossEntropy
		for step := 0; step < 3; step++ {
			out := m.Forward(x, true)
			res, err := loss.Eval(out, labels)
			if err != nil {
				t.Error(err)
				return nil
			}
			m.Backward(res.Grad)
		}
		return m.GradVector()
	}

	var wg sync.WaitGroup
	grads := make([][]float64, 2)
	for i, m := range []*Model{m1, m2} {
		wg.Add(1)
		go func(i int, m *Model) {
			defer wg.Done()
			grads[i] = run(m)
		}(i, m)
	}
	wg.Wait()

	if grads[0] == nil || grads[1] == nil {
		t.Fatal("a concurrent training run failed")
	}
	for i := range grads[0] {
		if grads[0][i] != grads[1][i] {
			t.Fatalf("grad[%d]: original %v, clone %v", i, grads[0][i], grads[1][i])
		}
	}
}

// TestModelCloneIndependence checks the clone deep-copies parameters and
// running statistics: training the clone leaves the original untouched.
func TestModelCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := NewModel(
		NewConv2D(1, 2, 3, 1, 1, rng),
		NewBatchNorm(2),
		NewFlatten(),
		NewDense(2*6*6, 3, rng),
	)
	c := m.Clone()

	before := m.StateVector()
	cs := c.StateVector()
	for i := range before {
		if before[i] != cs[i] {
			t.Fatalf("clone state[%d] = %v, want %v", i, cs[i], before[i])
		}
	}

	// Forward in train mode mutates the clone's BatchNorm running stats;
	// nudge its parameters too.
	x := tensor.Randn(rand.New(rand.NewSource(54)), 0, 1, 2, 1, 6, 6)
	c.Forward(x, true)
	c.Params()[0].Data()[0] += 1

	after := m.StateVector()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("training the clone changed original state[%d]", i)
		}
	}
}
