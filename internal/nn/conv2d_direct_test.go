package nn

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// restoreConvDispatch resets the direct-path budget mutated by a test.
func restoreConvDispatch(t testing.TB) {
	t.Helper()
	prev := conv2dDirectBudget
	t.Cleanup(func() { SetConv2DDirectBudget(prev) })
}

// conv2dCase is one geometry of the direct-vs-im2col property tests.
type conv2dCase struct {
	name                      string
	inC, outC, k, stride, pad int
	batch, h, w               int
}

// conv2dCases covers the edge geometries the dispatch must keep bit-identical:
// borders dominated by padding, kernels at least as large as the padded
// input, 1×1 kernels, output-channel counts straddling the 8-wide SIMD tile,
// and spatial sizes that leave ragged 4-position panels.
var conv2dCases = []conv2dCase{
	{"vgg-like", 3, 5, 3, 1, 1, 3, 9, 7},
	{"stride2", 2, 4, 3, 2, 1, 2, 8, 8},
	{"kernel1x1", 1, 3, 1, 1, 0, 2, 5, 5},
	{"kernel-exceeds-input", 2, 5, 5, 1, 2, 2, 2, 2},
	{"kernel-covers-padded", 1, 2, 3, 1, 1, 1, 1, 1},
	{"bench-shape", 3, 16, 3, 1, 1, 4, 16, 16},
	{"outc-ragged", 2, 9, 3, 1, 1, 3, 6, 5},
	{"even-kernel-stride2", 4, 7, 2, 2, 0, 2, 7, 9},
	{"no-pad", 3, 6, 3, 1, 0, 2, 7, 7},
}

func (tc conv2dCase) layer() *Conv2D {
	return NewConv2D(tc.inC, tc.outC, tc.k, tc.stride, tc.pad, rand.New(rand.NewSource(41)))
}

func (tc conv2dCase) input() *tensor.Tensor {
	return tensor.Randn(rand.New(rand.NewSource(42)), 0, 1, tc.batch, tc.inC, tc.h, tc.w)
}

// convInfer runs `steps` inference forwards on a fresh, identically seeded
// layer and returns a clone of the last output.
func convInfer(tc conv2dCase, steps int) *tensor.Tensor {
	layer, x := tc.layer(), tc.input()
	var o *tensor.Tensor
	for s := 0; s < steps; s++ {
		o = layer.Forward(x, false)
	}
	return o.Clone()
}

// convTrainStep runs `steps` training Forward+Backward passes on a fresh,
// identically seeded layer and returns clones of the output, input gradient,
// and parameter gradients. gradOut carries exact zeros so the zero-skip
// conventions are exercised on every path.
func convTrainStep(tc conv2dCase, steps int) (out, gin *tensor.Tensor, grads []*tensor.Tensor) {
	layer, x := tc.layer(), tc.input()
	var o, gi, g *tensor.Tensor
	for s := 0; s < steps; s++ {
		o = layer.Forward(x, true)
		if g == nil {
			g = tensor.Randn(rand.New(rand.NewSource(43)), 0, 1, o.Shape()...)
			gd := g.Data()
			zrng := rand.New(rand.NewSource(44))
			for i := range gd {
				if zrng.Intn(4) == 0 {
					gd[i] = 0
				}
			}
		}
		gi = layer.Backward(g)
	}
	return o.Clone(), gi.Clone(), cloneAll(layer.Grads())
}

// TestConv2DDirectBitIdenticalIm2col is the direct-forward correctness gate:
// for every edge geometry, the inference output must be bit-identical
// between the im2col+GEMM path and the direct path, on cold and warm
// workspaces.
func TestConv2DDirectBitIdenticalIm2col(t *testing.T) {
	restoreConvDispatch(t)
	for _, tc := range conv2dCases {
		SetConv2DDirectBudget(-1) // force im2col
		want := convInfer(tc, 1)
		SetConv2DDirectBudget(1 << 30) // force direct
		for _, steps := range []int{1, 2} {
			got := convInfer(tc, steps)
			if !equalData(got.Data(), want.Data()) {
				t.Errorf("%s steps=%d: direct forward diverges from im2col", tc.name, steps)
			}
		}
	}
}

// TestConv2DFusedBackwardBitIdentical is the fused input-gradient gate: a
// full training step must produce bit-identical output, input gradient, and
// parameter gradients whether the backward materializes the gradient-column
// matrix or scatters fused panels.
func TestConv2DFusedBackwardBitIdentical(t *testing.T) {
	restoreConvDispatch(t)
	for _, tc := range conv2dCases {
		SetConv2DDirectBudget(-1) // force materialized gradCol + col2im
		wantOut, wantGin, wantGrads := convTrainStep(tc, 1)
		SetConv2DDirectBudget(1 << 30) // force fused gradIn
		for _, steps := range []int{1, 2} {
			gotOut, gotGin, gotGrads := convTrainStep(tc, steps)
			if !equalData(gotOut.Data(), wantOut.Data()) {
				t.Errorf("%s steps=%d: forward diverges under fused backward", tc.name, steps)
			}
			if !equalData(gotGin.Data(), wantGin.Data()) {
				t.Errorf("%s steps=%d: fused input grad diverges from gradCol path", tc.name, steps)
			}
			for i := range wantGrads {
				if !equalData(gotGrads[i].Data(), wantGrads[i].Data()) {
					t.Errorf("%s steps=%d: param grad %d diverges under fused backward", tc.name, steps, i)
				}
			}
		}
	}
}

// TestConv2DDirectPoolParallelBitIdentical pins the new paths' pool
// determinism: the direct inference forward and the fused gradIn stage both
// split over the batch and must be bit-identical for any worker count.
func TestConv2DDirectPoolParallelBitIdentical(t *testing.T) {
	restoreConvDispatch(t)
	restorePool(t)
	SetConv2DDirectBudget(1 << 30)
	parallel.SetMinWork(32)
	tc := conv2dCase{"parallel", 3, 16, 3, 1, 1, 5, 12, 10}

	parallel.SetWorkers(1)
	wantInfer := convInfer(tc, 1)
	wantOut, wantGin, wantGrads := convTrainStep(tc, 1)
	for _, workers := range []int{2, 4, 7} {
		parallel.SetWorkers(workers)
		if got := convInfer(tc, 2); !equalData(got.Data(), wantInfer.Data()) {
			t.Errorf("workers=%d: direct forward diverges from serial", workers)
		}
		gotOut, gotGin, gotGrads := convTrainStep(tc, 2)
		if !equalData(gotOut.Data(), wantOut.Data()) {
			t.Errorf("workers=%d: training forward diverges from serial", workers)
		}
		if !equalData(gotGin.Data(), wantGin.Data()) {
			t.Errorf("workers=%d: fused input grad diverges from serial", workers)
		}
		for i := range wantGrads {
			if !equalData(gotGrads[i].Data(), wantGrads[i].Data()) {
				t.Errorf("workers=%d: param grad %d diverges from serial", workers, i)
			}
		}
	}
}

// TestConv2DDirectDispatch checks the dispatch rule itself: inference
// forwards of layers whose weight panel fits the budget take the direct
// path, training forwards and over-budget layers fall back to im2col, and a
// negative budget disables direct entirely.
func TestConv2DDirectDispatch(t *testing.T) {
	restoreConvDispatch(t)
	rng := rand.New(rand.NewSource(7))
	small := NewConv2D(3, 8, 3, 1, 1, rng)   // wT = 27*8*8 = 1728 B
	large := NewConv2D(64, 64, 3, 1, 1, rng) // wT = 576*64*8 = 294912 B
	x := tensor.Randn(rng, 0, 1, 1, 3, 6, 6)
	xl := tensor.Randn(rng, 0, 1, 1, 64, 6, 6)

	SetConv2DDirectBudget(64 << 10)
	small.Forward(x, false)
	if !small.lastDirect {
		t.Errorf("small layer under budget did not take the direct path")
	}
	small.Forward(x, true)
	if small.lastDirect {
		t.Errorf("training forward took the direct path")
	}
	large.Forward(xl, false)
	if large.lastDirect {
		t.Errorf("large layer over budget took the direct path")
	}
	SetConv2DDirectBudget(-1)
	small.Forward(x, false)
	if small.lastDirect {
		t.Errorf("direct path dispatched with a negative budget")
	}
}

// TestConv2DBackwardAfterInferencePanics pins the direct forward's contract:
// it keeps no state for Backward, so Backward without a training Forward
// must panic instead of silently using stale columns.
func TestConv2DBackwardAfterInferencePanics(t *testing.T) {
	restoreConvDispatch(t)
	SetConv2DDirectBudget(1 << 30)
	layer := NewConv2D(2, 4, 3, 1, 1, rand.New(rand.NewSource(3)))
	x := tensor.Randn(rand.New(rand.NewSource(4)), 0, 1, 1, 2, 5, 5)
	out := layer.Forward(x, false)
	defer func() {
		if recover() == nil {
			t.Errorf("Backward after inference-only Forward did not panic")
		}
	}()
	layer.Backward(out)
}

// TestConv2DDirectAllocFree pins the new paths' zero-allocation steady
// state: after warm-up, neither the direct inference forward nor the
// fused-backward training step may allocate.
func TestConv2DDirectAllocFree(t *testing.T) {
	restoreConvDispatch(t)
	SetConv2DDirectBudget(1 << 30)
	layer := NewConv2D(3, 16, 3, 1, 1, rand.New(rand.NewSource(9)))
	x := tensor.Randn(rand.New(rand.NewSource(10)), 0, 1, 4, 3, 12, 12)
	layer.Forward(x, false)
	if !layer.lastDirect {
		t.Fatal("expected direct dispatch")
	}
	allocs := testing.AllocsPerRun(10, func() {
		layer.Forward(x, false)
	})
	if allocs != 0 {
		t.Errorf("steady-state direct Forward allocates %v times per step, want 0", allocs)
	}
	out := layer.Forward(x, true)
	g := tensor.Randn(rand.New(rand.NewSource(11)), 0, 1, out.Shape()...)
	layer.Backward(g)
	allocs = testing.AllocsPerRun(10, func() {
		layer.Forward(x, true)
		layer.Backward(g)
	})
	if allocs != 0 {
		t.Errorf("steady-state fused Forward+Backward allocates %v times per step, want 0", allocs)
	}
}
