package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy couples a softmax over logits with the categorical
// cross-entropy loss. It exposes per-sample losses and probabilities, which
// the membership-inference attacks use as features.
type SoftmaxCrossEntropy struct{}

// LossResult carries the outputs of a loss evaluation.
type LossResult struct {
	// Mean is the batch-mean loss.
	Mean float64
	// PerSample holds the loss of each sample in the batch.
	PerSample []float64
	// Probs holds softmax probabilities, shape [B, C].
	Probs *tensor.Tensor
	// Grad is the gradient of the mean loss with respect to the logits,
	// shape [B, C].
	Grad *tensor.Tensor
}

// Eval computes softmax probabilities, per-sample cross-entropy losses, the
// batch-mean loss, and the gradient with respect to the logits. labels[i] is
// the class index of sample i.
func (SoftmaxCrossEntropy) Eval(logits *tensor.Tensor, labels []int) (*LossResult, error) {
	if logits.Dims() != 2 {
		return nil, fmt.Errorf("nn: loss expects [B, C] logits, got %v", logits.Shape())
	}
	batch, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != batch {
		return nil, fmt.Errorf("nn: %d labels for batch of %d", len(labels), batch)
	}
	probs := tensor.New(batch, classes)
	grad := tensor.New(batch, classes)
	perSample := make([]float64, batch)
	ld, pd, gd := logits.Data(), probs.Data(), grad.Data()
	mean := 0.0
	invB := 1.0 / float64(batch)
	for i := 0; i < batch; i++ {
		y := labels[i]
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("nn: label %d out of range [0,%d)", y, classes)
		}
		row := ld[i*classes : (i+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		pRow := pd[i*classes : (i+1)*classes]
		for j, v := range row {
			e := math.Exp(v - maxv)
			pRow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range pRow {
			pRow[j] *= inv
		}
		// Clamp to avoid log(0) on confident wrong predictions.
		p := pRow[y]
		if p < 1e-12 {
			p = 1e-12
		}
		perSample[i] = -math.Log(p)
		mean += perSample[i]
		gRow := gd[i*classes : (i+1)*classes]
		for j := range gRow {
			gRow[j] = pRow[j] * invB
		}
		gRow[y] -= invB
	}
	return &LossResult{
		Mean:      mean * invB,
		PerSample: perSample,
		Probs:     probs,
		Grad:      grad,
	}, nil
}

// Softmax returns row-wise softmax probabilities for [B, C] logits.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	batch, classes := logits.Dim(0), logits.Dim(1)
	probs := tensor.New(batch, classes)
	ld, pd := logits.Data(), probs.Data()
	for i := 0; i < batch; i++ {
		row := ld[i*classes : (i+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		pRow := pd[i*classes : (i+1)*classes]
		for j, v := range row {
			e := math.Exp(v - maxv)
			pRow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range pRow {
			pRow[j] *= inv
		}
	}
	return probs
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	batch, classes := logits.Dim(0), logits.Dim(1)
	if batch == 0 {
		return 0
	}
	ld := logits.Data()
	correct := 0
	for i := 0; i < batch; i++ {
		row := ld[i*classes : (i+1)*classes]
		best, bestJ := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bestJ = v, j+1
			}
		}
		if bestJ == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(batch)
}
