package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestSteadyStateZeroAllocs is the allocation-regression guard for the
// training hot path: after one warm-up step sizes every workspace, a
// Forward+Backward step on each layer must allocate nothing. Shapes are kept
// small so the kernels stay on their serial paths regardless of GOMAXPROCS
// (the parallel paths necessarily allocate goroutine closures).
func TestSteadyStateZeroAllocs(t *testing.T) {
	cases := []struct {
		name string
		mk   func(rng *rand.Rand) Layer
		dims []int
	}{
		{"dense", func(r *rand.Rand) Layer { return NewDense(16, 8, r) }, []int{16}},
		{"dense+relu", func(r *rand.Rand) Layer { return NewDenseAct(16, 8, ActReLU, r) }, []int{16}},
		{"dense+tanh", func(r *rand.Rand) Layer { return NewDenseAct(16, 8, ActTanh, r) }, []int{16}},
		{"conv2d", func(r *rand.Rand) Layer { return NewConv2D(2, 3, 3, 1, 1, r) }, []int{2, 8, 8}},
		{"conv1d", func(r *rand.Rand) Layer { return NewConv1D(2, 3, 5, 2, 2, r) }, []int{2, 16}},
		{"batchnorm", func(r *rand.Rand) Layer { return NewBatchNorm(3) }, []int{3, 4, 4}},
		{"relu", func(r *rand.Rand) Layer { return NewReLU() }, []int{12}},
		{"tanh", func(r *rand.Rand) Layer { return NewTanh() }, []int{12}},
		{"maxpool2d", func(r *rand.Rand) Layer { return NewMaxPool2D(2) }, []int{2, 6, 6}},
		{"maxpool1d", func(r *rand.Rand) Layer { return NewMaxPool1D(2) }, []int{3, 8}},
		{"globalavgpool", func(r *rand.Rand) Layer { return NewGlobalAvgPool() }, []int{3, 4, 4}},
		{"avgpool2d", func(r *rand.Rand) Layer { return NewAvgPool2D(2) }, []int{2, 6, 6}},
		{"residual", func(r *rand.Rand) Layer { return NewResidual(2, 4, 2, r) }, []int{2, 6, 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			layer := tc.mk(rand.New(rand.NewSource(61)))
			x := batchInput(rand.New(rand.NewSource(62)), 4, tc.dims)
			// Warm-up step: grows every workspace to its steady-state size.
			out := layer.Forward(x, true)
			g := tensor.Randn(rand.New(rand.NewSource(63)), 0, 1, out.Shape()...)
			layer.Backward(g)

			allocs := testing.AllocsPerRun(10, func() {
				layer.Forward(x, true)
				layer.Backward(g)
			})
			if allocs != 0 {
				t.Errorf("%s: steady-state Forward+Backward allocates %v times per step, want 0",
					tc.name, allocs)
			}
		})
	}
}

// TestMatMulSteadyStateZeroAllocs guards the Into-variant matmul kernels on
// their serial paths.
func TestMatMulSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	a := tensor.Randn(rng, 0, 1, 8, 12)
	b := tensor.Randn(rng, 0, 1, 12, 10)
	bt := tensor.Randn(rng, 0, 1, 10, 12)
	at := tensor.Randn(rng, 0, 1, 12, 8)
	out := tensor.New(8, 10)

	allocs := testing.AllocsPerRun(10, func() {
		if err := tensor.MatMulInto(out, a, b); err != nil {
			t.Fatal(err)
		}
		if err := tensor.MatMulTransBInto(out, a, bt); err != nil {
			t.Fatal(err)
		}
		if err := tensor.MatMulTransAInto(out, at, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state matmul kernels allocate %v times per run, want 0", allocs)
	}
}
