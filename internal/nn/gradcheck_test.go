package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// scalarize projects a layer output to a scalar via fixed random coefficients
// so we can gradient-check arbitrary output shapes: s = Σ w_i * out_i.
type scalarizer struct {
	w []float64
}

func newScalarizer(rng *rand.Rand, n int) *scalarizer {
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return &scalarizer{w: w}
}

func (s *scalarizer) value(out *tensor.Tensor) float64 {
	v := 0.0
	for i, o := range out.Data() {
		v += s.w[i] * o
	}
	return v
}

func (s *scalarizer) grad(out *tensor.Tensor) *tensor.Tensor {
	g := tensor.New(out.Shape()...)
	copy(g.Data(), s.w)
	return g
}

// checkLayerGradients verifies the analytic input and parameter gradients of a
// layer against central finite differences. BatchNorm-style layers whose
// forward pass has train-time state updates are checked with train=true but
// need their running stats to not affect the output; all our layers satisfy
// this (running stats only matter in eval mode).
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))

	out := layer.Forward(x, true)
	sc := newScalarizer(rng, out.Len())
	gradIn := layer.Backward(sc.grad(out))

	const eps = 1e-5

	// Input gradient check.
	xd := x.Data()
	for _, i := range sampleIndices(rng, len(xd), 20) {
		orig := xd[i]
		xd[i] = orig + eps
		plus := sc.value(layer.Forward(x, true))
		xd[i] = orig - eps
		minus := sc.value(layer.Forward(x, true))
		xd[i] = orig
		num := (plus - minus) / (2 * eps)
		got := gradIn.Data()[i]
		if !closeEnough(got, num, tol) {
			t.Fatalf("%s: input grad[%d] = %v, numeric %v", layer.Name(), i, got, num)
		}
	}

	// Parameter gradient check. Recompute analytic grads after the input
	// perturbation loop (it overwrote layer caches).
	out = layer.Forward(x, true)
	layer.Backward(sc.grad(out))
	params, grads := layer.Params(), layer.Grads()
	for pi, p := range params {
		pd := p.Data()
		analytic := grads[pi].Clone() // Backward overwrites; keep a copy
		for _, i := range sampleIndices(rng, len(pd), 12) {
			orig := pd[i]
			pd[i] = orig + eps
			plus := sc.value(layer.Forward(x, true))
			pd[i] = orig - eps
			minus := sc.value(layer.Forward(x, true))
			pd[i] = orig
			num := (plus - minus) / (2 * eps)
			got := analytic.Data()[i]
			if !closeEnough(got, num, tol) {
				t.Fatalf("%s: param %d grad[%d] = %v, numeric %v", layer.Name(), pi, i, got, num)
			}
		}
	}
}

func sampleIndices(rng *rand.Rand, n, k int) []int {
	if n <= k {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	seen := make(map[int]bool, k)
	var idx []int
	for len(idx) < k {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	return idx
}

func closeEnough(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff/scale <= tol
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewDense(7, 5, rng)
	x := tensor.Randn(rng, 0, 1, 4, 7)
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestDenseReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	layer := NewDenseAct(7, 5, ActReLU, rng)
	x := tensor.Randn(rng, 0, 1, 4, 7)
	checkLayerGradients(t, layer, x, 1e-5)
}

func TestDenseTanhGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	layer := NewDenseAct(7, 5, ActTanh, rng)
	x := tensor.Randn(rng, 0, 1, 4, 7)
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := NewConv2D(2, 3, 3, 1, 1, rng)
	x := tensor.Randn(rng, 0, 1, 2, 2, 5, 5)
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layer := NewConv2D(3, 4, 3, 2, 1, rng)
	x := tensor.Randn(rng, 0, 1, 2, 3, 8, 8)
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestConv1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layer := NewConv1D(2, 3, 5, 2, 2, rng)
	x := tensor.Randn(rng, 0, 1, 2, 2, 12)
	checkLayerGradients(t, layer, x, 1e-6)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(rng, 0, 1, 3, 6)
	// Keep values away from the kink at zero for finite differences.
	x.Apply(func(v float64) float64 {
		if math.Abs(v) < 0.05 {
			return v + 0.1
		}
		return v
	})
	checkLayerGradients(t, NewReLU(), x, 1e-6)
}

func TestTanhGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.Randn(rng, 0, 1, 3, 6)
	checkLayerGradients(t, NewTanh(), x, 1e-6)
}

func TestBatchNormDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layer := NewBatchNorm(5)
	x := tensor.Randn(rng, 1, 2, 6, 5)
	checkLayerGradients(t, layer, x, 1e-4)
}

func TestBatchNormConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	layer := NewBatchNorm(3)
	x := tensor.Randn(rng, 0, 1, 2, 3, 4, 4)
	checkLayerGradients(t, layer, x, 1e-4)
}

func TestMaxPool2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.Randn(rng, 0, 1, 2, 2, 6, 6)
	checkLayerGradients(t, NewMaxPool2D(2), x, 1e-5)
}

func TestMaxPool1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := tensor.Randn(rng, 0, 1, 2, 3, 8)
	checkLayerGradients(t, NewMaxPool1D(2), x, 1e-5)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.Randn(rng, 0, 1, 2, 3, 4, 4)
	checkLayerGradients(t, NewGlobalAvgPool(), x, 1e-6)
}

func TestGlobalAvgPool1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := tensor.Randn(rng, 0, 1, 2, 3, 9)
	checkLayerGradients(t, NewGlobalAvgPool(), x, 1e-6)
}

func TestAvgPool2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := tensor.Randn(rng, 0, 1, 2, 2, 6, 6)
	checkLayerGradients(t, NewAvgPool2D(2), x, 1e-6)
}

func TestResidualIdentityGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	layer := NewResidual(3, 3, 1, rng)
	x := tensor.Randn(rng, 0, 1, 2, 3, 5, 5)
	checkLayerGradients(t, layer, x, 1e-4)
}

func TestResidualProjectionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	layer := NewResidual(2, 4, 2, rng)
	x := tensor.Randn(rng, 0, 1, 2, 2, 6, 6)
	checkLayerGradients(t, layer, x, 1e-4)
}

// TestModelEndToEndGradient checks a complete small CNN + cross-entropy loss
// against finite differences on the flat parameter vector.
func TestModelEndToEndGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m := NewModel(
		NewConv2D(1, 2, 3, 1, 1, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(2*3*3, 4, rng),
	)
	x := tensor.Randn(rng, 0, 1, 3, 1, 6, 6)
	labels := []int{0, 2, 3}
	var loss SoftmaxCrossEntropy

	forwardLoss := func() float64 {
		out := m.Forward(x, true)
		res, err := loss.Eval(out, labels)
		if err != nil {
			t.Fatal(err)
		}
		return res.Mean
	}

	out := m.Forward(x, true)
	res, err := loss.Eval(out, labels)
	if err != nil {
		t.Fatal(err)
	}
	m.Backward(res.Grad)
	analytic := m.GradVector()

	vec := m.ParamVector()
	const eps = 1e-5
	for _, i := range sampleIndices(rng, len(vec), 25) {
		orig := vec[i]
		vec[i] = orig + eps
		if err := m.SetParamVector(vec); err != nil {
			t.Fatal(err)
		}
		plus := forwardLoss()
		vec[i] = orig - eps
		if err := m.SetParamVector(vec); err != nil {
			t.Fatal(err)
		}
		minus := forwardLoss()
		vec[i] = orig
		if err := m.SetParamVector(vec); err != nil {
			t.Fatal(err)
		}
		num := (plus - minus) / (2 * eps)
		if !closeEnough(analytic[i], num, 1e-4) {
			t.Fatalf("model grad[%d] = %v, numeric %v", i, analytic[i], num)
		}
	}
}
