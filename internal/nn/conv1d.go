package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Conv1D is a 1-D convolution over [B, C, L] inputs (used by the M18 audio
// model). Weights have shape [OutC, InC, K].
//
// Output and input-gradient tensors live in a grow-only per-layer workspace,
// so a steady-state training step performs no allocations.
type Conv1D struct {
	InC, OutC   int
	K           int
	Stride, Pad int

	w, b   *tensor.Tensor
	gw, gb *tensor.Tensor

	lastX *tensor.Tensor
	ws    tensor.Workspace
}

// Conv1D workspace slots.
const (
	conv1dSlotOut = iota
	conv1dSlotGradIn
)

var (
	_ Layer       = (*Conv1D)(nil)
	_ Initializer = (*Conv1D)(nil)
)

// NewConv1D returns a 1-D convolution layer with He-initialized weights.
func NewConv1D(inC, outC, k, stride, pad int, rng *rand.Rand) *Conv1D {
	c := &Conv1D{
		InC:    inC,
		OutC:   outC,
		K:      k,
		Stride: stride,
		Pad:    pad,
		w:      tensor.New(outC, inC, k),
		b:      tensor.New(outC),
		gw:     tensor.New(outC, inC, k),
		gb:     tensor.New(outC),
	}
	c.ResetParams(rng)
	return c
}

// Name implements Layer.
func (c *Conv1D) Name() string {
	return fmt.Sprintf("conv1d(%d,%d->%d,s%d,p%d)", c.K, c.InC, c.OutC, c.Stride, c.Pad)
}

// InitScale implements Initializer.
func (c *Conv1D) InitScale() float64 {
	return math.Sqrt(2.0 / float64(c.InC*c.K))
}

// ResetParams implements Initializer.
func (c *Conv1D) ResetParams(rng *rand.Rand) {
	std := c.InitScale()
	for i, data := 0, c.w.Data(); i < len(data); i++ {
		data[i] = rng.NormFloat64() * std
	}
	c.b.Zero()
}

// cloneLayer implements layer cloning with an unshared workspace.
func (c *Conv1D) cloneLayer() Layer {
	return &Conv1D{
		InC:    c.InC,
		OutC:   c.OutC,
		K:      c.K,
		Stride: c.Stride,
		Pad:    c.Pad,
		w:      c.w.Clone(),
		b:      c.b.Clone(),
		gw:     c.gw.Clone(),
		gb:     c.gb.Clone(),
	}
}

// OutLen returns the output length for an input of length l.
func (c *Conv1D) OutLen(l int) int { return (l+2*c.Pad-c.K)/c.Stride + 1 }

// Forward implements Layer.
func (c *Conv1D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input %v", c.Name(), x.Shape()))
	}
	batch, l := x.Dim(0), x.Dim(2)
	ol := c.OutLen(l)
	if ol <= 0 {
		panic(fmt.Sprintf("nn: %s output length %d for input %v", c.Name(), ol, x.Shape()))
	}
	c.lastX = x
	out := c.ws.Get3D(conv1dSlotOut, batch, c.OutC, ol)
	xd, od, wd, bd := x.Data(), out.Data(), c.w.Data(), c.b.Data()
	for bi := 0; bi < batch; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			dst := od[(bi*c.OutC+oc)*ol : (bi*c.OutC+oc+1)*ol]
			for o := 0; o < ol; o++ {
				i0 := o*c.Stride - c.Pad
				sum := bd[oc]
				for ic := 0; ic < c.InC; ic++ {
					src := xd[(bi*c.InC+ic)*l : (bi*c.InC+ic+1)*l]
					wRow := wd[(oc*c.InC+ic)*c.K : (oc*c.InC+ic+1)*c.K]
					for k := 0; k < c.K; k++ {
						i := i0 + k
						if i < 0 || i >= l {
							continue
						}
						sum += wRow[k] * src[i]
					}
				}
				dst[o] = sum
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv1D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastX == nil {
		panic("nn: conv1d Backward before Forward")
	}
	batch, l := c.lastX.Dim(0), c.lastX.Dim(2)
	ol := gradOut.Dim(2)
	c.gw.Zero()
	c.gb.Zero()
	gradIn := c.ws.Get3D(conv1dSlotGradIn, batch, c.InC, l)
	gradIn.Zero() // the scatter below accumulates
	xd, gd := c.lastX.Data(), gradOut.Data()
	gid, gwd, gbd, wd := gradIn.Data(), c.gw.Data(), c.gb.Data(), c.w.Data()
	for bi := 0; bi < batch; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			gRow := gd[(bi*c.OutC+oc)*ol : (bi*c.OutC+oc+1)*ol]
			for o, g := range gRow {
				if g == 0 {
					continue
				}
				gbd[oc] += g
				i0 := o*c.Stride - c.Pad
				for ic := 0; ic < c.InC; ic++ {
					src := xd[(bi*c.InC+ic)*l : (bi*c.InC+ic+1)*l]
					giRow := gid[(bi*c.InC+ic)*l : (bi*c.InC+ic+1)*l]
					wRow := wd[(oc*c.InC+ic)*c.K : (oc*c.InC+ic+1)*c.K]
					gwRow := gwd[(oc*c.InC+ic)*c.K : (oc*c.InC+ic+1)*c.K]
					for k := 0; k < c.K; k++ {
						i := i0 + k
						if i < 0 || i >= l {
							continue
						}
						gwRow[k] += g * src[i]
						giRow[i] += g * wRow[k]
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv1D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv1D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gw, c.gb} }
