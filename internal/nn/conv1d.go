package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Conv1D is a 1-D convolution over [B, C, L] inputs (used by the M18 audio
// model). Weights have shape [OutC, InC, K].
//
// Output and input-gradient tensors live in a grow-only per-layer workspace,
// so a steady-state training step performs no allocations.
type Conv1D struct {
	InC, OutC   int
	K           int
	Stride, Pad int

	w, b   *tensor.Tensor
	gw, gb *tensor.Tensor

	lastX *tensor.Tensor
	ws    tensor.Workspace
}

// Conv1D workspace slots.
const (
	conv1dSlotOut = iota
	conv1dSlotGradIn
)

var (
	_ Layer       = (*Conv1D)(nil)
	_ Initializer = (*Conv1D)(nil)
)

// NewConv1D returns a 1-D convolution layer with He-initialized weights.
func NewConv1D(inC, outC, k, stride, pad int, rng *rand.Rand) *Conv1D {
	c := &Conv1D{
		InC:    inC,
		OutC:   outC,
		K:      k,
		Stride: stride,
		Pad:    pad,
		w:      tensor.New(outC, inC, k),
		b:      tensor.New(outC),
		gw:     tensor.New(outC, inC, k),
		gb:     tensor.New(outC),
	}
	c.ResetParams(rng)
	return c
}

// Name implements Layer.
func (c *Conv1D) Name() string {
	return fmt.Sprintf("conv1d(%d,%d->%d,s%d,p%d)", c.K, c.InC, c.OutC, c.Stride, c.Pad)
}

// InitScale implements Initializer.
func (c *Conv1D) InitScale() float64 {
	return math.Sqrt(2.0 / float64(c.InC*c.K))
}

// ResetParams implements Initializer.
func (c *Conv1D) ResetParams(rng *rand.Rand) {
	std := c.InitScale()
	for i, data := 0, c.w.Data(); i < len(data); i++ {
		data[i] = rng.NormFloat64() * std
	}
	c.b.Zero()
}

// cloneLayer implements layer cloning with an unshared workspace.
func (c *Conv1D) cloneLayer() Layer {
	return &Conv1D{
		InC:    c.InC,
		OutC:   c.OutC,
		K:      c.K,
		Stride: c.Stride,
		Pad:    c.Pad,
		w:      c.w.Clone(),
		b:      c.b.Clone(),
		gw:     c.gw.Clone(),
		gb:     c.gb.Clone(),
	}
}

// OutLen returns the output length for an input of length l.
func (c *Conv1D) OutLen(l int) int { return (l+2*c.Pad-c.K)/c.Stride + 1 }

// interior returns the [lo, hi) range of output positions whose receptive
// field lies fully inside an input of length l: for o in that range the
// window [o*Stride-Pad, o*Stride-Pad+K) needs no clipping, so the inner
// loops can drop their per-tap bounds tests. hi is 0 when the kernel is
// longer than the padded input ever allows (K > l+Pad).
func (c *Conv1D) interior(l, ol int) (lo, hi int) {
	if num := l - c.K + c.Pad; num >= 0 {
		hi = num/c.Stride + 1
	}
	if hi > ol {
		hi = ol
	}
	if c.Pad > 0 {
		lo = (c.Pad + c.Stride - 1) / c.Stride
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Forward implements Layer.
func (c *Conv1D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input %v", c.Name(), x.Shape()))
	}
	batch, l := x.Dim(0), x.Dim(2)
	ol := c.OutLen(l)
	if ol <= 0 {
		panic(fmt.Sprintf("nn: %s output length %d for input %v", c.Name(), ol, x.Shape()))
	}
	c.lastX = x
	out := c.ws.Get3D(conv1dSlotOut, batch, c.OutC, ol)
	xd, od, wd, bd := x.Data(), out.Data(), c.w.Data(), c.b.Data()
	oLo, oHi := c.interior(l, ol)
	// The channel loop sits outside the position loop so the source row and
	// weight row are sliced once per (oc, ic) instead of once per tap group.
	// Each output element still accumulates bias first, then ic-ascending,
	// k-ascending products — the same sequence as the per-element loop this
	// replaces, so results are bit-identical.
	for bi := 0; bi < batch; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			dst := od[(bi*c.OutC+oc)*ol:][:ol]
			bias := bd[oc]
			for o := range dst {
				dst[o] = bias
			}
			for ic := 0; ic < c.InC; ic++ {
				src := xd[(bi*c.InC+ic)*l:][:l]
				wRow := wd[(oc*c.InC+ic)*c.K:][:c.K]
				for o := 0; o < oLo; o++ { // left border: window clipped below 0
					i0 := o*c.Stride - c.Pad
					s := dst[o]
					for k, wv := range wRow {
						if i := i0 + k; i >= 0 && i < l {
							s += wv * src[i]
						}
					}
					dst[o] = s
				}
				for o := oLo; o < oHi; o++ { // interior: no clipping, no bounds checks
					window := src[o*c.Stride-c.Pad:][:len(wRow)]
					s := dst[o]
					for k, wv := range wRow {
						s += wv * window[k]
					}
					dst[o] = s
				}
				for o := oHi; o < ol; o++ { // right border: window clipped at l
					i0 := o*c.Stride - c.Pad
					s := dst[o]
					for k, wv := range wRow {
						if i := i0 + k; i >= 0 && i < l {
							s += wv * src[i]
						}
					}
					dst[o] = s
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv1D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastX == nil {
		panic("nn: conv1d Backward before Forward")
	}
	batch, l := c.lastX.Dim(0), c.lastX.Dim(2)
	ol := gradOut.Dim(2)
	c.gw.Zero()
	c.gb.Zero()
	gradIn := c.ws.Get3D(conv1dSlotGradIn, batch, c.InC, l)
	gradIn.Zero() // the scatter below accumulates
	xd, gd := c.lastX.Data(), gradOut.Data()
	gid, gwd, gbd, wd := gradIn.Data(), c.gw.Data(), c.gb.Data(), c.w.Data()
	oLo, oHi := c.interior(l, ol)
	// Same restructuring as Forward: channels outside positions so the four
	// row slices hoist out of the tap loop, with a clip-free interior range.
	// Every accumulator (gb per oc; gw per tap; gradIn per input element)
	// still receives its contributions in the original order — gb over
	// (bi, o) ascending, gw over (bi, o) ascending, gradIn over (oc, o, k)
	// ascending — so gradients are bit-identical.
	for bi := 0; bi < batch; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			gRow := gd[(bi*c.OutC+oc)*ol:][:ol]
			for _, g := range gRow {
				if g == 0 {
					continue
				}
				gbd[oc] += g
			}
			for ic := 0; ic < c.InC; ic++ {
				src := xd[(bi*c.InC+ic)*l:][:l]
				giRow := gid[(bi*c.InC+ic)*l:][:l]
				wRow := wd[(oc*c.InC+ic)*c.K:][:c.K]
				gwRow := gwd[(oc*c.InC+ic)*c.K:][:len(wRow)]
				for o := 0; o < oLo; o++ { // left border
					g := gRow[o]
					if g == 0 {
						continue
					}
					i0 := o*c.Stride - c.Pad
					for k, wv := range wRow {
						if i := i0 + k; i >= 0 && i < l {
							gwRow[k] += g * src[i]
							giRow[i] += g * wv
						}
					}
				}
				for o := oLo; o < oHi; o++ { // interior: no clipping, no bounds checks
					g := gRow[o]
					if g == 0 {
						continue
					}
					i0 := o*c.Stride - c.Pad
					window := src[i0:][:len(wRow)]
					giWin := giRow[i0:][:len(wRow)]
					for k, wv := range wRow {
						gwRow[k] += g * window[k]
						giWin[k] += g * wv
					}
				}
				for o := oHi; o < ol; o++ { // right border
					g := gRow[o]
					if g == 0 {
						continue
					}
					i0 := o*c.Stride - c.Pad
					for k, wv := range wRow {
						if i := i0 + k; i >= 0 && i < l {
							gwRow[k] += g * src[i]
							giRow[i] += g * wv
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv1D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv1D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gw, c.gb} }
