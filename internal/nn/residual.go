package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Composite is implemented by layers that contain sub-layers; model
// introspection (parameter spans, per-layer obfuscation) walks through
// composites to reach the primitive weight-bearing layers.
type Composite interface {
	Sublayers() []Layer
}

// Residual is a pre-activation-free basic residual block:
//
//	out = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + shortcut(x) )
//
// where shortcut is identity when shapes match and a strided 1×1
// convolution + BatchNorm projection otherwise (the ResNet20 configuration).
type Residual struct {
	conv1, conv2 *Conv2D
	bn1, bn2     *BatchNorm
	relu1        *ReLU

	projConv *Conv2D    // nil for identity shortcut
	projBN   *BatchNorm // nil for identity shortcut

	outRelu    *ReLU
	lastX      *tensor.Tensor
	lastSumLen int
}

var (
	_ Layer       = (*Residual)(nil)
	_ Composite   = (*Residual)(nil)
	_ SkipWrapped = (*Residual)(nil)
)

// NewResidual returns a basic residual block mapping inC channels to outC
// channels with the given stride on the first convolution. When stride != 1
// or inC != outC the shortcut is a 1×1 strided convolution with BatchNorm.
func NewResidual(inC, outC, stride int, rng *rand.Rand) *Residual {
	r := &Residual{
		conv1:   NewConv2D(inC, outC, 3, stride, 1, rng),
		bn1:     NewBatchNorm(outC),
		relu1:   NewReLU(),
		conv2:   NewConv2D(outC, outC, 3, 1, 1, rng),
		bn2:     NewBatchNorm(outC),
		outRelu: NewReLU(),
	}
	if stride != 1 || inC != outC {
		r.projConv = NewConv2D(inC, outC, 1, stride, 0, rng)
		r.projBN = NewBatchNorm(outC)
	}
	return r
}

// Name implements Layer.
func (r *Residual) Name() string {
	return fmt.Sprintf("residual(%d->%d,s%d)", r.conv1.InC, r.conv1.OutC, r.conv1.Stride)
}

// cloneLayer implements layer cloning: every sub-layer is cloned, preserving
// the identity-vs-projection shortcut configuration.
func (r *Residual) cloneLayer() Layer {
	c := &Residual{
		conv1:   r.conv1.cloneLayer().(*Conv2D),
		bn1:     r.bn1.cloneLayer().(*BatchNorm),
		relu1:   NewReLU(),
		conv2:   r.conv2.cloneLayer().(*Conv2D),
		bn2:     r.bn2.cloneLayer().(*BatchNorm),
		outRelu: NewReLU(),
	}
	if r.projConv != nil {
		c.projConv = r.projConv.cloneLayer().(*Conv2D)
		c.projBN = r.projBN.cloneLayer().(*BatchNorm)
	}
	return c
}

// SkipWrapped implements SkipWrapped: the block's sub-layers are bypassed by
// the shortcut, so obfuscating any single one of them leaves the model
// functional.
func (r *Residual) SkipWrapped() {}

// Sublayers implements Composite. Order matters: it defines the parameter
// layout of the block.
func (r *Residual) Sublayers() []Layer {
	ls := []Layer{r.conv1, r.bn1, r.conv2, r.bn2}
	if r.projConv != nil {
		ls = append(ls, r.projConv, r.projBN)
	}
	return ls
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.lastX = x
	h := r.conv1.Forward(x, train)
	h = r.bn1.Forward(h, train)
	h = r.relu1.Forward(h, train)
	h = r.conv2.Forward(h, train)
	h = r.bn2.Forward(h, train)

	var sc *tensor.Tensor
	if r.projConv != nil {
		sc = r.projConv.Forward(x, train)
		sc = r.projBN.Forward(sc, train)
	} else {
		sc = x
	}
	if err := h.AddInPlace(sc); err != nil {
		panic(fmt.Sprintf("nn: %s shortcut mismatch: %v", r.Name(), err))
	}
	r.lastSumLen = h.Len()
	return r.outRelu.Forward(h, train)
}

// Backward implements Layer.
func (r *Residual) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := r.outRelu.Backward(gradOut)

	// Main path.
	gm := r.bn2.Backward(g)
	gm = r.conv2.Backward(gm)
	gm = r.relu1.Backward(gm)
	gm = r.bn1.Backward(gm)
	gm = r.conv1.Backward(gm)

	// Shortcut path.
	var gs *tensor.Tensor
	if r.projConv != nil {
		gs = r.projBN.Backward(g)
		gs = r.projConv.Backward(gs)
	} else {
		gs = g
	}
	if err := gm.AddInPlace(gs); err != nil {
		panic(fmt.Sprintf("nn: %s backward shortcut mismatch: %v", r.Name(), err))
	}
	return gm
}

// Params implements Layer, concatenating sub-layer parameters in Sublayers
// order.
func (r *Residual) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range r.Sublayers() {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads implements Layer.
func (r *Residual) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range r.Sublayers() {
		gs = append(gs, l.Grads()...)
	}
	return gs
}
