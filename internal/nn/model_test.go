package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func buildTinyCNN(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	return NewModel(
		NewConv2D(1, 2, 3, 1, 1, rng),
		NewBatchNorm(2),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(2*4*4, 8, rng),
		NewTanh(),
		NewDense(8, 3, rng),
	)
}

func TestModelSpansMergeBatchNorm(t *testing.T) {
	m := buildTinyCNN(1)
	spans := m.Spans()
	// conv+bn merged, dense, dense => 3 logical layers.
	if len(spans) != 3 {
		t.Fatalf("NumLayers = %d, want 3 (spans: %+v)", len(spans), spans)
	}
	convParams := 2*1*3*3 + 2 // conv w+b
	bnParams := 2 + 2         // gamma+beta
	if spans[0].Len != convParams+bnParams {
		t.Fatalf("span 0 len = %d, want %d", spans[0].Len, convParams+bnParams)
	}
	if spans[0].Offset != 0 {
		t.Fatalf("span 0 offset = %d", spans[0].Offset)
	}
	if spans[1].Offset != spans[0].Len {
		t.Fatalf("span 1 offset = %d, want %d", spans[1].Offset, spans[0].Len)
	}
	total := 0
	for _, s := range spans {
		total += s.Len
	}
	if total != m.NumParams() {
		t.Fatalf("span total %d != NumParams %d", total, m.NumParams())
	}
}

func TestModelParamVectorRoundTrip(t *testing.T) {
	m := buildTinyCNN(2)
	vec := m.ParamVector()
	for i := range vec {
		vec[i] = float64(i) * 0.001
	}
	if err := m.SetParamVector(vec); err != nil {
		t.Fatal(err)
	}
	got := m.ParamVector()
	for i := range vec {
		if got[i] != vec[i] {
			t.Fatalf("round trip mismatch at %d: %v != %v", i, got[i], vec[i])
		}
	}
	if err := m.SetParamVector(vec[:10]); err == nil {
		t.Fatal("SetParamVector accepted a short vector")
	}
}

func TestModelStateVectorIncludesRunningStats(t *testing.T) {
	m := buildTinyCNN(3)
	if m.NumState() <= m.NumParams() {
		t.Fatalf("NumState %d should exceed NumParams %d (BN stats)", m.NumState(), m.NumParams())
	}
	rng := rand.New(rand.NewSource(3))
	x := tensor.Randn(rng, 0, 1, 4, 1, 8, 8)
	m.Forward(x, true) // updates running stats

	state := m.StateVector()
	m2 := buildTinyCNN(99)
	if err := m2.SetStateVector(state); err != nil {
		t.Fatal(err)
	}
	// Eval-mode outputs must now agree exactly (same params AND stats).
	o1 := m.Forward(x, false)
	o2 := m2.Forward(x, false)
	for i := range o1.Data() {
		if math.Abs(o1.Data()[i]-o2.Data()[i]) > 1e-12 {
			t.Fatalf("eval outputs diverge at %d", i)
		}
	}
	if err := m2.SetStateVector(state[:5]); err == nil {
		t.Fatal("SetStateVector accepted a short vector")
	}
}

func TestModelLayerGradVectors(t *testing.T) {
	m := buildTinyCNN(4)
	rng := rand.New(rand.NewSource(4))
	x := tensor.Randn(rng, 0, 1, 2, 1, 8, 8)
	out := m.Forward(x, true)
	var loss SoftmaxCrossEntropy
	res, err := loss.Eval(out, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Backward(res.Grad)
	lg := m.LayerGradVectors()
	if len(lg) != m.NumLayers() {
		t.Fatalf("LayerGradVectors len = %d, want %d", len(lg), m.NumLayers())
	}
	total := 0
	for _, g := range lg {
		total += len(g)
	}
	if total != m.NumParams() {
		t.Fatalf("layer grads cover %d params, want %d", total, m.NumParams())
	}
}

func TestModelZeroGrads(t *testing.T) {
	m := buildTinyCNN(5)
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(rng, 0, 1, 2, 1, 8, 8)
	out := m.Forward(x, true)
	var loss SoftmaxCrossEntropy
	res, err := loss.Eval(out, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Backward(res.Grad)
	m.ZeroGrads()
	for _, g := range m.GradVector() {
		if g != 0 {
			t.Fatal("ZeroGrads left nonzero gradient")
		}
	}
}

func TestModelDescribe(t *testing.T) {
	m := buildTinyCNN(6)
	d := m.Describe()
	if d == "" {
		t.Fatal("empty Describe")
	}
}

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	logits := tensor.MustFromSlice([]float64{1, 1, 1, 0, 0, 10}, 2, 3)
	var loss SoftmaxCrossEntropy
	res, err := loss.Eval(logits, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: uniform softmax => loss = ln 3.
	if math.Abs(res.PerSample[0]-math.Log(3)) > 1e-9 {
		t.Fatalf("loss[0] = %v, want ln3", res.PerSample[0])
	}
	// Row 1: nearly certain correct => loss ~ 0.
	if res.PerSample[1] > 1e-3 {
		t.Fatalf("loss[1] = %v, want ~0", res.PerSample[1])
	}
	if math.Abs(res.Mean-(res.PerSample[0]+res.PerSample[1])/2) > 1e-12 {
		t.Fatalf("mean loss mismatch")
	}
	// Probabilities sum to one per row.
	for i := 0; i < 2; i++ {
		row, _ := res.Probs.Row(i)
		s := 0.0
		for _, p := range row {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("probs row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyErrors(t *testing.T) {
	var loss SoftmaxCrossEntropy
	if _, err := loss.Eval(tensor.New(2, 3), []int{0}); err == nil {
		t.Fatal("accepted wrong label count")
	}
	if _, err := loss.Eval(tensor.New(1, 3), []int{5}); err == nil {
		t.Fatal("accepted out-of-range label")
	}
	if _, err := loss.Eval(tensor.New(6), []int{0}); err == nil {
		t.Fatal("accepted 1-D logits")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.MustFromSlice([]float64{
		3, 1, 0,
		0, 5, 1,
		1, 0, 2,
		9, 0, 0,
	}, 4, 3)
	got := Accuracy(logits, []int{0, 1, 2, 1})
	if got != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", got)
	}
	if Accuracy(tensor.New(0, 3), nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

// Property: softmax grad rows sum to ~0 (shift invariance of cross-entropy).
func TestQuickLossGradRowsSumZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, c := 1+rng.Intn(5), 2+rng.Intn(5)
		logits := tensor.Randn(rng, 0, 3, b, c)
		labels := make([]int, b)
		for i := range labels {
			labels[i] = rng.Intn(c)
		}
		var loss SoftmaxCrossEntropy
		res, err := loss.Eval(logits, labels)
		if err != nil {
			return false
		}
		for i := 0; i < b; i++ {
			row, _ := res.Grad.Row(i)
			s := 0.0
			for _, v := range row {
				s += v
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-sample losses are non-negative and the mean matches.
func TestQuickLossNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, c := 1+rng.Intn(6), 2+rng.Intn(6)
		logits := tensor.Randn(rng, 0, 2, b, c)
		labels := make([]int, b)
		for i := range labels {
			labels[i] = rng.Intn(c)
		}
		var loss SoftmaxCrossEntropy
		res, err := loss.Eval(logits, labels)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, l := range res.PerSample {
			if l < 0 {
				return false
			}
			sum += l
		}
		return math.Abs(sum/float64(b)-res.Mean) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResetParamsChangesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(4, 4, rng)
	before := append([]float64(nil), d.Params()[0].Data()...)
	d.ResetParams(rand.New(rand.NewSource(2)))
	after := d.Params()[0].Data()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("ResetParams did not change weights")
	}
}

func TestSoftmaxMatchesLossProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := tensor.Randn(rng, 0, 1, 3, 4)
	labels := []int{0, 1, 2}
	var loss SoftmaxCrossEntropy
	res, err := loss.Eval(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	probs := Softmax(logits)
	for i := range probs.Data() {
		if math.Abs(probs.Data()[i]-res.Probs.Data()[i]) > 1e-12 {
			t.Fatal("Softmax disagrees with loss probabilities")
		}
	}
}
