package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [B, C, H, W] inputs, implemented with
// im2col + matrix multiplication. Weights have shape [OutC, InC, KH, KW].
//
// The matmuls run transpose-free against cached 2-D views of the weight and
// weight-gradient tensors, and every per-step temporary (the im2col column
// matrix, the permute staging buffers, the gradient buffers) lives in a
// grow-only per-layer workspace, so a steady-state training step performs no
// allocations. im2col/col2im parallelize over the batch dimension.
type Conv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int

	w, b   *tensor.Tensor
	gw, gb *tensor.Tensor

	// wMat and gwMat are fixed 2-D [OutC, InC*KH*KW] views sharing w's and
	// gw's storage, built once so the hot path never re-reshapes.
	wMat, gwMat *tensor.Tensor

	lastCol             *tensor.Tensor
	lastB, lastH, lastW int // input geometry of the last Forward
	ws                  tensor.Workspace
}

// Conv2D workspace slots.
const (
	convSlotCol = iota
	convSlotOut2D
	convSlotOut
	convSlotG2D
	convSlotGradCol
	convSlotGradIn
)

var (
	_ Layer       = (*Conv2D)(nil)
	_ Initializer = (*Conv2D)(nil)
)

// NewConv2D returns a 2-D convolution layer with He-initialized weights.
func NewConv2D(inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC:    inC,
		OutC:   outC,
		KH:     k,
		KW:     k,
		Stride: stride,
		Pad:    pad,
		w:      tensor.New(outC, inC, k, k),
		b:      tensor.New(outC),
		gw:     tensor.New(outC, inC, k, k),
		gb:     tensor.New(outC),
	}
	c.wMat = c.w.MustReshape(outC, inC*k*k)
	c.gwMat = c.gw.MustReshape(outC, inC*k*k)
	c.ResetParams(rng)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv2d(%dx%d,%d->%d,s%d,p%d)", c.KH, c.KW, c.InC, c.OutC, c.Stride, c.Pad)
}

// InitScale implements Initializer.
func (c *Conv2D) InitScale() float64 {
	fanIn := float64(c.InC * c.KH * c.KW)
	return math.Sqrt(2.0 / fanIn)
}

// ResetParams implements Initializer.
func (c *Conv2D) ResetParams(rng *rand.Rand) {
	std := c.InitScale()
	for i, data := 0, c.w.Data(); i < len(data); i++ {
		data[i] = rng.NormFloat64() * std
	}
	c.b.Zero()
}

// cloneLayer implements layer cloning with an unshared workspace.
func (c *Conv2D) cloneLayer() Layer {
	n := &Conv2D{
		InC:    c.InC,
		OutC:   c.OutC,
		KH:     c.KH,
		KW:     c.KW,
		Stride: c.Stride,
		Pad:    c.Pad,
		w:      c.w.Clone(),
		b:      c.b.Clone(),
		gw:     c.gw.Clone(),
		gb:     c.gb.Clone(),
	}
	n.wMat = n.w.MustReshape(n.OutC, n.InC*n.KH*n.KW)
	n.gwMat = n.gw.MustReshape(n.OutC, n.InC*n.KH*n.KW)
	return n
}

// OutSize returns the spatial output size for an input of size h×w.
func (c *Conv2D) OutSize(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// Forward implements Layer. The returned tensor is a workspace buffer valid
// until the next Forward on this layer.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input %v", c.Name(), x.Shape()))
	}
	batch, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s output size %dx%d for input %v", c.Name(), oh, ow, x.Shape()))
	}
	colWidth := c.InC * c.KH * c.KW
	col := c.ws.Get2D(convSlotCol, batch*oh*ow, colWidth)
	im2colInto(col, x, c.KH, c.KW, c.Stride, c.Pad, oh, ow)
	c.lastCol = col
	c.lastB, c.lastH, c.lastW = batch, h, w

	// out2d = col × Wmatᵀ => [B*oh*ow, OutC], without materializing Wmatᵀ.
	out2d := c.ws.Get2D(convSlotOut2D, batch*oh*ow, c.OutC)
	if err := tensor.MatMulTransBInto(out2d, col, c.wMat); err != nil {
		panic(err)
	}
	// Add bias and permute [B*oh*ow, OutC] -> [B, OutC, oh, ow].
	out := c.ws.Get4D(convSlotOut, batch, c.OutC, oh, ow)
	o2, od, bd := out2d.Data(), out.Data(), c.b.Data()
	spatial := oh * ow
	for bi := 0; bi < batch; bi++ {
		for s := 0; s < spatial; s++ {
			row := o2[(bi*spatial+s)*c.OutC : (bi*spatial+s+1)*c.OutC]
			for oc, v := range row {
				od[(bi*c.OutC+oc)*spatial+s] = v + bd[oc]
			}
		}
	}
	return out
}

// Backward implements Layer. The returned tensor is a workspace buffer valid
// until the next Backward on this layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastCol == nil {
		panic("nn: conv2d Backward before Forward")
	}
	batch, oh, ow := gradOut.Dim(0), gradOut.Dim(2), gradOut.Dim(3)
	spatial := oh * ow
	// Permute gradOut [B, OutC, oh, ow] -> [B*oh*ow, OutC].
	g2d := c.ws.Get2D(convSlotG2D, batch*spatial, c.OutC)
	gd, g2 := gradOut.Data(), g2d.Data()
	for bi := 0; bi < batch; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			src := gd[(bi*c.OutC+oc)*spatial : (bi*c.OutC+oc+1)*spatial]
			for s, v := range src {
				g2[(bi*spatial+s)*c.OutC+oc] = v
			}
		}
	}
	// gb = column sums of g2d.
	c.gb.Zero()
	gbd := c.gb.Data()
	for r := 0; r < batch*spatial; r++ {
		row := g2[r*c.OutC : (r+1)*c.OutC]
		for oc, v := range row {
			gbd[oc] += v
		}
	}
	// gw = g2dᵀ × col => [OutC, InC*KH*KW], without materializing g2dᵀ.
	if err := tensor.MatMulTransAInto(c.gwMat, g2d, c.lastCol); err != nil {
		panic(err)
	}
	// gradCol = g2d × Wmat => [B*oh*ow, InC*KH*KW]
	colWidth := c.InC * c.KH * c.KW
	gradCol := c.ws.Get2D(convSlotGradCol, batch*spatial, colWidth)
	if err := tensor.MatMulInto(gradCol, g2d, c.wMat); err != nil {
		panic(err)
	}
	gradIn := c.ws.Get4D(convSlotGradIn, c.lastB, c.InC, c.lastH, c.lastW)
	gradIn.Zero()
	col2imInto(gradIn, gradCol, c.KH, c.KW, c.Stride, c.Pad, oh, ow)
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gw, c.gb} }

// im2colInto unrolls convolution windows of x [B, C, H, W] into col, a matrix
// of shape [B*oh*ow, C*kh*kw]. Every element of col is written (padding
// positions are explicitly zeroed), so col may hold stale workspace data on
// entry. Batch items are independent rows, so the loop fans out over the
// batch dimension on the compute pool when the volume justifies it; the
// serial decision is taken before any closure is built so small
// steady-state steps stay allocation-free.
func im2colInto(col, x *tensor.Tensor, kh, kw, stride, pad, oh, ow int) {
	batch := x.Dim(0)
	g := parallel.Grain(col.Len() / batch)
	if parallel.Chunks(batch, g) <= 1 {
		im2colRange(col, x, 0, batch, kh, kw, stride, pad, oh, ow)
		return
	}
	parallel.For(batch, g, func(lo, hi int) {
		im2colRange(col, x, lo, hi, kh, kw, stride, pad, oh, ow)
	})
}

// im2colRange unrolls batch items [b0,b1).
func im2colRange(col, x *tensor.Tensor, b0, b1, kh, kw, stride, pad, oh, ow int) {
	ch, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
	colWidth := ch * kh * kw
	xd, cd := x.Data(), col.Data()
	for bi := b0; bi < b1; bi++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				rowOff := ((bi*oh+oy)*ow + ox) * colWidth
				for c := 0; c < ch; c++ {
					chanOff := (bi*ch + c) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						dst := cd[rowOff+(c*kh+ky)*kw : rowOff+(c*kh+ky)*kw+kw]
						if iy < 0 || iy >= h {
							for kx := range dst {
								dst[kx] = 0
							}
							continue
						}
						srcRow := chanOff + iy*w
						for kx := range dst {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								dst[kx] = 0
								continue
							}
							dst[kx] = xd[srcRow+ix]
						}
					}
				}
			}
		}
	}
}

// col2imInto scatters a column matrix back into out (shape [B, C, H, W]),
// accumulating overlapping contributions. It is the adjoint of im2col; out
// must be zeroed by the caller. Batch items scatter into disjoint regions of
// out, so the loop fans out over the batch dimension on the compute pool
// when the volume justifies it.
func col2imInto(out, col *tensor.Tensor, kh, kw, stride, pad, oh, ow int) {
	batch := out.Dim(0)
	g := parallel.Grain(col.Len() / batch)
	if parallel.Chunks(batch, g) <= 1 {
		col2imRange(out, col, 0, batch, kh, kw, stride, pad, oh, ow)
		return
	}
	parallel.For(batch, g, func(lo, hi int) {
		col2imRange(out, col, lo, hi, kh, kw, stride, pad, oh, ow)
	})
}

// col2imRange scatters batch items [b0,b1).
func col2imRange(out, col *tensor.Tensor, b0, b1, kh, kw, stride, pad, oh, ow int) {
	ch, h, w := out.Dim(1), out.Dim(2), out.Dim(3)
	colWidth := ch * kh * kw
	cd, od := col.Data(), out.Data()
	for bi := b0; bi < b1; bi++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				rowOff := ((bi*oh+oy)*ow + ox) * colWidth
				for c := 0; c < ch; c++ {
					chanOff := (bi*ch + c) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := rowOff + (c*kh+ky)*kw
						dstRow := chanOff + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							od[dstRow+ix] += cd[src+kx]
						}
					}
				}
			}
		}
	}
}
