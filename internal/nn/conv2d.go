package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [B, C, H, W] inputs, implemented with
// im2col + matrix multiplication. Weights have shape [OutC, InC, KH, KW].
type Conv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int

	w, b   *tensor.Tensor
	gw, gb *tensor.Tensor

	lastCol   *tensor.Tensor
	lastShape []int // input shape of the last Forward
}

var (
	_ Layer       = (*Conv2D)(nil)
	_ Initializer = (*Conv2D)(nil)
)

// NewConv2D returns a 2-D convolution layer with He-initialized weights.
func NewConv2D(inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC:    inC,
		OutC:   outC,
		KH:     k,
		KW:     k,
		Stride: stride,
		Pad:    pad,
		w:      tensor.New(outC, inC, k, k),
		b:      tensor.New(outC),
		gw:     tensor.New(outC, inC, k, k),
		gb:     tensor.New(outC),
	}
	c.ResetParams(rng)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv2d(%dx%d,%d->%d,s%d,p%d)", c.KH, c.KW, c.InC, c.OutC, c.Stride, c.Pad)
}

// InitScale implements Initializer.
func (c *Conv2D) InitScale() float64 {
	fanIn := float64(c.InC * c.KH * c.KW)
	return math.Sqrt(2.0 / fanIn)
}

// ResetParams implements Initializer.
func (c *Conv2D) ResetParams(rng *rand.Rand) {
	std := c.InitScale()
	for i, data := 0, c.w.Data(); i < len(data); i++ {
		data[i] = rng.NormFloat64() * std
	}
	c.b.Zero()
}

// OutSize returns the spatial output size for an input of size h×w.
func (c *Conv2D) OutSize(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input %v", c.Name(), x.Shape()))
	}
	batch, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s output size %dx%d for input %v", c.Name(), oh, ow, x.Shape()))
	}
	col := im2col(x, c.KH, c.KW, c.Stride, c.Pad, oh, ow)
	c.lastCol = col
	c.lastShape = x.Shape()

	wmat := c.w.MustReshape(c.OutC, c.InC*c.KH*c.KW)
	wt, err := tensor.Transpose2D(wmat)
	if err != nil {
		panic(err)
	}
	out2d, err := tensor.MatMul(col, wt) // [B*oh*ow, OutC]
	if err != nil {
		panic(err)
	}
	// Add bias and permute [B*oh*ow, OutC] -> [B, OutC, oh, ow].
	out := tensor.New(batch, c.OutC, oh, ow)
	o2, od, bd := out2d.Data(), out.Data(), c.b.Data()
	spatial := oh * ow
	for bi := 0; bi < batch; bi++ {
		for s := 0; s < spatial; s++ {
			row := o2[(bi*spatial+s)*c.OutC : (bi*spatial+s+1)*c.OutC]
			for oc, v := range row {
				od[(bi*c.OutC+oc)*spatial+s] = v + bd[oc]
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastCol == nil {
		panic("nn: conv2d Backward before Forward")
	}
	batch, oh, ow := gradOut.Dim(0), gradOut.Dim(2), gradOut.Dim(3)
	spatial := oh * ow
	// Permute gradOut [B, OutC, oh, ow] -> [B*oh*ow, OutC].
	g2d := tensor.New(batch*spatial, c.OutC)
	gd, g2 := gradOut.Data(), g2d.Data()
	for bi := 0; bi < batch; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			src := gd[(bi*c.OutC+oc)*spatial : (bi*c.OutC+oc+1)*spatial]
			for s, v := range src {
				g2[(bi*spatial+s)*c.OutC+oc] = v
			}
		}
	}
	// gb = column sums of g2d.
	c.gb.Zero()
	gbd := c.gb.Data()
	for r := 0; r < batch*spatial; r++ {
		row := g2[r*c.OutC : (r+1)*c.OutC]
		for oc, v := range row {
			gbd[oc] += v
		}
	}
	// gw = g2dᵀ × col  => [OutC, InC*KH*KW]
	g2t, err := tensor.Transpose2D(g2d)
	if err != nil {
		panic(err)
	}
	gwMat := c.gw.MustReshape(c.OutC, c.InC*c.KH*c.KW)
	if err := tensor.MatMulInto(gwMat, g2t, c.lastCol); err != nil {
		panic(err)
	}
	// gradCol = g2d × Wmat => [B*oh*ow, InC*KH*KW]
	wmat := c.w.MustReshape(c.OutC, c.InC*c.KH*c.KW)
	gradCol, err := tensor.MatMul(g2d, wmat)
	if err != nil {
		panic(err)
	}
	return col2im(gradCol, c.lastShape, c.KH, c.KW, c.Stride, c.Pad, oh, ow)
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gw, c.gb} }

// im2col unrolls convolution windows of x [B, C, H, W] into a matrix of shape
// [B*oh*ow, C*kh*kw]; out-of-bounds (padding) positions contribute zeros.
func im2col(x *tensor.Tensor, kh, kw, stride, pad, oh, ow int) *tensor.Tensor {
	batch, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	colWidth := ch * kh * kw
	col := tensor.New(batch*oh*ow, colWidth)
	xd, cd := x.Data(), col.Data()
	for bi := 0; bi < batch; bi++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				rowOff := ((bi*oh+oy)*ow + ox) * colWidth
				for c := 0; c < ch; c++ {
					chanOff := (bi*ch + c) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						dst := rowOff + (c*kh+ky)*kw
						if iy < 0 || iy >= h {
							continue // zeros already present
						}
						srcRow := chanOff + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							cd[dst+kx] = xd[srcRow+ix]
						}
					}
				}
			}
		}
	}
	return col
}

// col2im scatters a column matrix back into an image tensor of inShape,
// accumulating overlapping contributions. It is the adjoint of im2col.
func col2im(col *tensor.Tensor, inShape []int, kh, kw, stride, pad, oh, ow int) *tensor.Tensor {
	batch, ch, h, w := inShape[0], inShape[1], inShape[2], inShape[3]
	colWidth := ch * kh * kw
	out := tensor.New(batch, ch, h, w)
	cd, od := col.Data(), out.Data()
	for bi := 0; bi < batch; bi++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				rowOff := ((bi*oh+oy)*ow + ox) * colWidth
				for c := 0; c < ch; c++ {
					chanOff := (bi*ch + c) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := rowOff + (c*kh+ky)*kw
						dstRow := chanOff + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							od[dstRow+ix] += cd[src+kx]
						}
					}
				}
			}
		}
	}
	return out
}
