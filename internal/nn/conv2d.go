package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [B, C, H, W] inputs. Weights have shape
// [OutC, InC, KH, KW].
//
// Two execution paths share the layer, picked per shape and phase (see
// useDirect):
//
//   - im2col + GEMM: unroll windows into a column matrix, multiply against
//     the weight matrix with the blocked matmuls. Always used for training
//     forwards — the backward pass needs the column matrix for the weight
//     gradient anyway, so a direct forward would just gather every window
//     twice — and for wide layers whose weight matrix exceeds cache (the
//     blocked GEMM tiles it properly).
//   - direct: walk input windows in place, four output positions at a time,
//     and multiply each gathered window panel against the packed transposed
//     weights with the same SIMD micro kernel the blocked GEMM uses. Used
//     for inference forwards of layers whose transposed weight panel stays
//     cache-resident: the column matrix is never materialized.
//
// Backward always runs from the training forward's column matrix, but for
// budget-fitting shapes its input-gradient stage is fused: gradient-column
// rows come out of the micro kernel four positions at a time and scatter
// straight into gradIn, skipping the full gradient-column matrix round-trip.
//
// All paths produce bit-identical outputs and gradients: the gathered window
// rows carry exactly the im2col values (padding explicitly zero), and every
// accumulator sees the same operation sequence (property-tested in
// conv2d_direct_test.go).
//
// The matmuls run transpose-free against cached 2-D views of the weight and
// weight-gradient tensors, and every per-step temporary (the im2col column
// matrix, the permute staging buffers, the gradient buffers, the direct
// path's window and output panels) lives in a grow-only per-layer workspace,
// so a steady-state training step performs no allocations. Both paths
// parallelize over the batch dimension (the direct path's gradient pass over
// output channels).
type Conv2D struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int

	w, b   *tensor.Tensor
	gw, gb *tensor.Tensor

	// wMat and gwMat are fixed 2-D [OutC, InC*KH*KW] views sharing w's and
	// gw's storage, built once so the hot path never re-reshapes.
	wMat, gwMat *tensor.Tensor

	lastCol             *tensor.Tensor
	lastDirect          bool // whether the last Forward took the direct path
	lastB, lastH, lastW int  // input geometry of the last Forward
	ws                  tensor.Workspace
}

// Conv2D workspace slots. New slots must be appended, never renumbered.
const (
	convSlotCol = iota
	convSlotOut2D
	convSlotOut
	convSlotG2D
	convSlotGradCol
	convSlotGradIn
	convSlotWT     // direct: packed Wᵀ [colWidth, OutC]
	convSlotPanelA // per-batch window (direct) / gradient-column (fused) panels
	convSlotPanelB // direct: per-batch output panels
)

// convPanelRows is the number of output positions the direct path batches per
// micro-kernel call — one register-tile row block (gemmMR).
const convPanelRows = 4

// conv2dDirectBudget caps the weight-matrix footprint (bytes) for which the
// direct inference forward and the fused input-gradient stage dispatch. Both
// stream the whole weight panel once per four output positions, so it must
// stay cache-resident; past roughly L2 size the im2col + blocked-GEMM path
// wins because it tiles the weight matrix. Default picked from
// BenchmarkConv2DDirectVsIm2col.
var conv2dDirectBudget = 64 << 10

// SetConv2DDirectBudget overrides the direct-path dispatch budget in bytes
// and returns the previous value. Values < 0 disable the direct and fused
// paths. Intended for tests and benchmarks.
func SetConv2DDirectBudget(b int) (prev int) {
	prev = conv2dDirectBudget
	conv2dDirectBudget = b
	return prev
}

// useDirect reports whether this layer's shape dispatches to the direct
// convolution paths (inference forward and fused input-gradient stage).
func (c *Conv2D) useDirect(colWidth int) bool {
	return colWidth*c.OutC*8 <= conv2dDirectBudget
}

var (
	_ Layer       = (*Conv2D)(nil)
	_ Initializer = (*Conv2D)(nil)
)

// NewConv2D returns a 2-D convolution layer with He-initialized weights.
func NewConv2D(inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC:    inC,
		OutC:   outC,
		KH:     k,
		KW:     k,
		Stride: stride,
		Pad:    pad,
		w:      tensor.New(outC, inC, k, k),
		b:      tensor.New(outC),
		gw:     tensor.New(outC, inC, k, k),
		gb:     tensor.New(outC),
	}
	c.wMat = c.w.MustReshape(outC, inC*k*k)
	c.gwMat = c.gw.MustReshape(outC, inC*k*k)
	c.ResetParams(rng)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv2d(%dx%d,%d->%d,s%d,p%d)", c.KH, c.KW, c.InC, c.OutC, c.Stride, c.Pad)
}

// InitScale implements Initializer.
func (c *Conv2D) InitScale() float64 {
	fanIn := float64(c.InC * c.KH * c.KW)
	return math.Sqrt(2.0 / fanIn)
}

// ResetParams implements Initializer.
func (c *Conv2D) ResetParams(rng *rand.Rand) {
	std := c.InitScale()
	for i, data := 0, c.w.Data(); i < len(data); i++ {
		data[i] = rng.NormFloat64() * std
	}
	c.b.Zero()
}

// cloneLayer implements layer cloning with an unshared workspace.
func (c *Conv2D) cloneLayer() Layer {
	n := &Conv2D{
		InC:    c.InC,
		OutC:   c.OutC,
		KH:     c.KH,
		KW:     c.KW,
		Stride: c.Stride,
		Pad:    c.Pad,
		w:      c.w.Clone(),
		b:      c.b.Clone(),
		gw:     c.gw.Clone(),
		gb:     c.gb.Clone(),
	}
	n.wMat = n.w.MustReshape(n.OutC, n.InC*n.KH*n.KW)
	n.gwMat = n.gw.MustReshape(n.OutC, n.InC*n.KH*n.KW)
	return n
}

// OutSize returns the spatial output size for an input of size h×w.
func (c *Conv2D) OutSize(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.KH)/c.Stride + 1
	ow := (w+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// Forward implements Layer. The returned tensor is a workspace buffer valid
// until the next Forward on this layer. Inference forwards (train false) of
// budget-fitting shapes take the direct path, which keeps no state for
// Backward; a training forward must precede Backward.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input %v", c.Name(), x.Shape()))
	}
	batch, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s output size %dx%d for input %v", c.Name(), oh, ow, x.Shape()))
	}
	colWidth := c.InC * c.KH * c.KW
	if !train && c.useDirect(colWidth) {
		return c.forwardDirect(x, batch, h, w, oh, ow, colWidth)
	}
	col := c.ws.Get2D(convSlotCol, batch*oh*ow, colWidth)
	im2colInto(col, x, c.KH, c.KW, c.Stride, c.Pad, oh, ow)
	c.lastCol = col
	c.lastDirect = false
	c.lastB, c.lastH, c.lastW = batch, h, w

	// out2d = col × Wmatᵀ => [B*oh*ow, OutC], without materializing Wmatᵀ.
	out2d := c.ws.Get2D(convSlotOut2D, batch*oh*ow, c.OutC)
	if err := tensor.MatMulTransBInto(out2d, col, c.wMat); err != nil {
		panic(err)
	}
	// Add bias and permute [B*oh*ow, OutC] -> [B, OutC, oh, ow].
	out := c.ws.Get4D(convSlotOut, batch, c.OutC, oh, ow)
	o2, od, bd := out2d.Data(), out.Data(), c.b.Data()
	spatial := oh * ow
	for bi := 0; bi < batch; bi++ {
		for s := 0; s < spatial; s++ {
			row := o2[(bi*spatial+s)*c.OutC : (bi*spatial+s+1)*c.OutC]
			for oc, v := range row {
				od[(bi*c.OutC+oc)*spatial+s] = v + bd[oc]
			}
		}
	}
	return out
}

// forwardDirect is the direct-convolution inference forward: per four output
// positions, gather the input windows into a contiguous panel (carrying
// exactly the im2col row values — padding explicitly zero) and multiply it
// against the packed transposed weights with the shared SIMD micro kernel.
// Each output element accumulates its colWidth products ascending with the
// zero-skip convention, then adds the bias — the identical per-element
// sequence to the im2col path's MatMulTransB + bias pass, so results are
// bit-identical.
func (c *Conv2D) forwardDirect(x *tensor.Tensor, batch, h, w, oh, ow, colWidth int) *tensor.Tensor {
	c.lastCol = nil // direct forwards keep no state; Backward needs a training Forward
	c.lastDirect = true
	spatial := oh * ow

	// Pack Wᵀ once per call so kernel lanes (output channels) read
	// contiguously: wT[p][oc] = wMat[oc][p].
	wT := c.ws.Get2D(convSlotWT, colWidth, c.OutC)
	wd, wtd := c.wMat.Data(), wT.Data()
	for oc := 0; oc < c.OutC; oc++ {
		row := wd[oc*colWidth:][:colWidth]
		for p, v := range row {
			wtd[p*c.OutC+oc] = v
		}
	}

	out := c.ws.Get4D(convSlotOut, batch, c.OutC, oh, ow)
	win := c.ws.Get2D(convSlotPanelA, batch, convPanelRows*colWidth)
	pan := c.ws.Get2D(convSlotPanelB, batch, convPanelRows*c.OutC)
	xd, od, bd := x.Data(), out.Data(), c.b.Data()
	wind, pand := win.Data(), pan.Data()
	g := parallel.Grain(spatial * colWidth * c.OutC)
	if parallel.Chunks(batch, g) <= 1 {
		c.forwardDirectRange(xd, od, bd, wtd, wind, pand, 0, batch, h, w, oh, ow, colWidth)
		return out
	}
	parallel.For(batch, g, func(lo, hi int) {
		c.forwardDirectRange(xd, od, bd, wtd, wind, pand, lo, hi, h, w, oh, ow, colWidth)
	})
	return out
}

// forwardDirectRange computes batch items [b0, b1). Panels are indexed by
// batch item, so parallel workers touch disjoint scratch.
func (c *Conv2D) forwardDirectRange(xd, od, bd, wtd, wind, pand []float64, b0, b1, h, w, oh, ow, colWidth int) {
	spatial := oh * ow
	for bi := b0; bi < b1; bi++ {
		wrow := wind[bi*convPanelRows*colWidth:][:convPanelRows*colWidth]
		prow := pand[bi*convPanelRows*c.OutC:][:convPanelRows*c.OutC]
		for s0 := 0; s0 < spatial; s0 += convPanelRows {
			rows := min(convPanelRows, spatial-s0)
			for r := 0; r < rows; r++ {
				s := s0 + r
				conv2dWindow(wrow[r*colWidth:][:colWidth], xd, bi, c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad, s/ow, s%ow)
			}
			tensor.GEMMPanel(prow, c.OutC, wrow, colWidth, wtd, c.OutC, rows, colWidth, c.OutC)
			for r := 0; r < rows; r++ {
				s := s0 + r
				res := prow[r*c.OutC:][:c.OutC]
				for oc, v := range res {
					od[(bi*c.OutC+oc)*spatial+s] = v + bd[oc]
				}
			}
		}
	}
}

// Backward implements Layer. The returned tensor is a workspace buffer valid
// until the next Backward on this layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastCol == nil {
		panic("nn: conv2d Backward before training Forward")
	}
	batch, oh, ow := gradOut.Dim(0), gradOut.Dim(2), gradOut.Dim(3)
	spatial := oh * ow
	// Permute gradOut [B, OutC, oh, ow] -> [B*oh*ow, OutC].
	g2d := c.ws.Get2D(convSlotG2D, batch*spatial, c.OutC)
	gd, g2 := gradOut.Data(), g2d.Data()
	for bi := 0; bi < batch; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			src := gd[(bi*c.OutC+oc)*spatial : (bi*c.OutC+oc+1)*spatial]
			for s, v := range src {
				g2[(bi*spatial+s)*c.OutC+oc] = v
			}
		}
	}
	// gb = column sums of g2d.
	c.gb.Zero()
	gbd := c.gb.Data()
	for r := 0; r < batch*spatial; r++ {
		row := g2[r*c.OutC : (r+1)*c.OutC]
		for oc, v := range row {
			gbd[oc] += v
		}
	}
	// gw = g2dᵀ × col => [OutC, InC*KH*KW], without materializing g2dᵀ.
	if err := tensor.MatMulTransAInto(c.gwMat, g2d, c.lastCol); err != nil {
		panic(err)
	}
	// gradIn = scatter(g2d × Wmat). For budget-fitting shapes the fused
	// stage runs the multiply four positions at a time straight out of g2d
	// and scatters each gradient-column row immediately — the full
	// [B*oh*ow, InC*KH*KW] gradient-column matrix never exists. Larger
	// shapes materialize it and let the blocked GEMM tile the weight
	// matrix. Per-element operation sequences are identical either way.
	colWidth := c.InC * c.KH * c.KW
	gradIn := c.ws.Get4D(convSlotGradIn, c.lastB, c.InC, c.lastH, c.lastW)
	gradIn.Zero()
	if c.useDirect(colWidth) {
		gid := gradIn.Data()
		gcol := c.ws.Get2D(convSlotPanelA, batch, convPanelRows*colWidth)
		gcold, wd := gcol.Data(), c.wMat.Data()
		gi := parallel.Grain(spatial * colWidth * c.OutC)
		if parallel.Chunks(batch, gi) <= 1 {
			c.gradInFusedRange(g2, gid, wd, gcold, 0, batch, oh, ow, colWidth)
			return gradIn
		}
		parallel.For(batch, gi, func(lo, hi int) {
			c.gradInFusedRange(g2, gid, wd, gcold, lo, hi, oh, ow, colWidth)
		})
		return gradIn
	}
	gradCol := c.ws.Get2D(convSlotGradCol, batch*spatial, colWidth)
	if err := tensor.MatMulInto(gradCol, g2d, c.wMat); err != nil {
		panic(err)
	}
	col2imInto(gradIn, gradCol, c.KH, c.KW, c.Stride, c.Pad, oh, ow)
	return gradIn
}

// gradInFusedRange computes gradIn for batch items [b0, b1): per four output
// positions, multiply their g2d rows (already contiguous [r, OutC]) against
// the weight matrix with the shared micro kernel — oc-ascending per element
// with the zero-skip convention, exactly MatMul's sequence — and scatter the
// resulting gradient-column rows into gradIn in col2im's loop order.
func (c *Conv2D) gradInFusedRange(g2, gid, wd, gcold []float64, b0, b1, oh, ow, colWidth int) {
	h, w := c.lastH, c.lastW
	spatial := oh * ow
	for bi := b0; bi < b1; bi++ {
		gcrow := gcold[bi*convPanelRows*colWidth:][:convPanelRows*colWidth]
		for s0 := 0; s0 < spatial; s0 += convPanelRows {
			rows := min(convPanelRows, spatial-s0)
			grow := g2[(bi*spatial+s0)*c.OutC:][:rows*c.OutC]
			tensor.GEMMPanel(gcrow, colWidth, grow, c.OutC, wd, colWidth, rows, c.OutC, colWidth)
			for r := 0; r < rows; r++ {
				s := s0 + r
				conv2dScatter(gid, gcrow[r*colWidth:][:colWidth], bi, c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad, s/ow, s%ow)
			}
		}
	}
}

// conv2dWindow gathers one output position's input window into dst (length
// colWidth), mirroring im2colRange for a single column row: clipped taps are
// written as explicit zeros, so dst carries exactly the im2col row values.
func conv2dWindow(dst, xd []float64, bi, ch, h, w, kh, kw, stride, pad, oy, ox int) {
	iy0 := oy*stride - pad
	ix0 := ox*stride - pad
	for cc := 0; cc < ch; cc++ {
		chanOff := (bi*ch + cc) * h * w
		for ky := 0; ky < kh; ky++ {
			iy := iy0 + ky
			d := dst[(cc*kh+ky)*kw:][:kw]
			if iy < 0 || iy >= h {
				for kx := range d {
					d[kx] = 0
				}
				continue
			}
			srcRow := chanOff + iy*w
			for kx := range d {
				ix := ix0 + kx
				if ix < 0 || ix >= w {
					d[kx] = 0
					continue
				}
				d[kx] = xd[srcRow+ix]
			}
		}
	}
}

// conv2dScatter accumulates one gradient-column row into od, mirroring
// col2imRange for a single position: taps falling outside the input are
// skipped, contributions land in (c, ky, kx) ascending order.
func conv2dScatter(od, grow []float64, bi, ch, h, w, kh, kw, stride, pad, oy, ox int) {
	iy0 := oy*stride - pad
	ix0 := ox*stride - pad
	for cc := 0; cc < ch; cc++ {
		chanOff := (bi*ch + cc) * h * w
		for ky := 0; ky < kh; ky++ {
			iy := iy0 + ky
			if iy < 0 || iy >= h {
				continue
			}
			src := grow[(cc*kh+ky)*kw:][:kw]
			dstRow := chanOff + iy*w
			for kx, v := range src {
				ix := ix0 + kx
				if ix < 0 || ix >= w {
					continue
				}
				od[dstRow+ix] += v
			}
		}
	}
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gw, c.gb} }

// im2colInto unrolls convolution windows of x [B, C, H, W] into col, a matrix
// of shape [B*oh*ow, C*kh*kw]. Every element of col is written (padding
// positions are explicitly zeroed), so col may hold stale workspace data on
// entry. Batch items are independent rows, so the loop fans out over the
// batch dimension on the compute pool when the volume justifies it; the
// serial decision is taken before any closure is built so small
// steady-state steps stay allocation-free.
func im2colInto(col, x *tensor.Tensor, kh, kw, stride, pad, oh, ow int) {
	batch := x.Dim(0)
	g := parallel.Grain(col.Len() / batch)
	if parallel.Chunks(batch, g) <= 1 {
		im2colRange(col, x, 0, batch, kh, kw, stride, pad, oh, ow)
		return
	}
	parallel.For(batch, g, func(lo, hi int) {
		im2colRange(col, x, lo, hi, kh, kw, stride, pad, oh, ow)
	})
}

// im2colRange unrolls batch items [b0,b1).
func im2colRange(col, x *tensor.Tensor, b0, b1, kh, kw, stride, pad, oh, ow int) {
	ch, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
	colWidth := ch * kh * kw
	xd, cd := x.Data(), col.Data()
	for bi := b0; bi < b1; bi++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				rowOff := ((bi*oh+oy)*ow + ox) * colWidth
				for c := 0; c < ch; c++ {
					chanOff := (bi*ch + c) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						dst := cd[rowOff+(c*kh+ky)*kw : rowOff+(c*kh+ky)*kw+kw]
						if iy < 0 || iy >= h {
							for kx := range dst {
								dst[kx] = 0
							}
							continue
						}
						srcRow := chanOff + iy*w
						for kx := range dst {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								dst[kx] = 0
								continue
							}
							dst[kx] = xd[srcRow+ix]
						}
					}
				}
			}
		}
	}
}

// col2imInto scatters a column matrix back into out (shape [B, C, H, W]),
// accumulating overlapping contributions. It is the adjoint of im2col; out
// must be zeroed by the caller. Batch items scatter into disjoint regions of
// out, so the loop fans out over the batch dimension on the compute pool
// when the volume justifies it.
func col2imInto(out, col *tensor.Tensor, kh, kw, stride, pad, oh, ow int) {
	batch := out.Dim(0)
	g := parallel.Grain(col.Len() / batch)
	if parallel.Chunks(batch, g) <= 1 {
		col2imRange(out, col, 0, batch, kh, kw, stride, pad, oh, ow)
		return
	}
	parallel.For(batch, g, func(lo, hi int) {
		col2imRange(out, col, lo, hi, kh, kw, stride, pad, oh, ow)
	})
}

// col2imRange scatters batch items [b0,b1).
func col2imRange(out, col *tensor.Tensor, b0, b1, kh, kw, stride, pad, oh, ow int) {
	ch, h, w := out.Dim(1), out.Dim(2), out.Dim(3)
	colWidth := ch * kh * kw
	cd, od := col.Data(), out.Data()
	for bi := b0; bi < b1; bi++ {
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*stride - pad
				rowOff := ((bi*oh+oy)*ow + ox) * colWidth
				for c := 0; c < ch; c++ {
					chanOff := (bi*ch + c) * h * w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := rowOff + (c*kh+ky)*kw
						dstRow := chanOff + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							od[dstRow+ix] += cd[src+kx]
						}
					}
				}
			}
		}
	}
}
