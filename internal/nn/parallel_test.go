package nn

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// restorePool resets compute-pool configuration mutated by a test.
func restorePool(t *testing.T) {
	t.Helper()
	prevW, prevM := parallel.Workers(), parallel.MinWork()
	t.Cleanup(func() {
		parallel.SetWorkers(prevW)
		parallel.SetMinWork(prevM)
	})
}

// TestLayersPoolParallelBitIdentical is the property test behind the
// pool's determinism guarantee: a Forward+Backward step of every
// parallelized layer must be bit-identical with the pool sized 1 (serial)
// and sized past the chunk count. Batch sizes cover the odd shapes — one
// item (always serial), batch == workers, prime batch.
func TestLayersPoolParallelBitIdentical(t *testing.T) {
	restorePool(t)
	parallel.SetMinWork(32) // force parallel paths on test-sized shapes
	cases := []struct {
		name string
		mk   func(rng *rand.Rand) Layer
		dims []int
	}{
		{"conv2d", func(r *rand.Rand) Layer { return NewConv2D(3, 5, 3, 1, 1, r) }, []int{3, 9, 7}},
		{"batchnorm2d", func(r *rand.Rand) Layer { return NewBatchNorm(5) }, []int{5, 6, 5}},
		{"batchnorm1d", func(r *rand.Rand) Layer { return NewBatchNorm(7) }, []int{7}},
		{"relu", func(r *rand.Rand) Layer { return NewReLU() }, []int{33}},
		{"dense+relu", func(r *rand.Rand) Layer { return NewDenseAct(11, 9, ActReLU, r) }, []int{11}},
		{"dense+tanh", func(r *rand.Rand) Layer { return NewDenseAct(11, 9, ActTanh, r) }, []int{11}},
		{"tanh", func(r *rand.Rand) Layer { return NewTanh() }, []int{29}},
		{"maxpool2d", func(r *rand.Rand) Layer { return NewMaxPool2D(2) }, []int{3, 8, 6}},
		{"maxpool1d", func(r *rand.Rand) Layer { return NewMaxPool1D(3) }, []int{2, 27}},
		{"globalavgpool", func(r *rand.Rand) Layer { return NewGlobalAvgPool() }, []int{3, 5, 7}},
		{"avgpool2d", func(r *rand.Rand) Layer { return NewAvgPool2D(2) }, []int{3, 6, 8}},
	}
	batches := []int{1, 3, 4, 7, 13}
	for _, tc := range cases {
		for _, batch := range batches {
			x := batchInput(rand.New(rand.NewSource(17)), batch, tc.dims)

			// Serial reference.
			parallel.SetWorkers(1)
			ref := tc.mk(rand.New(rand.NewSource(5)))
			refOut := ref.Forward(x, true)
			g := tensor.Randn(rand.New(rand.NewSource(6)), 0, 1, refOut.Shape()...)
			wantOut := refOut.Clone()
			wantGrad := ref.Backward(g).Clone()
			wantParamGrads := cloneAll(ref.Grads())

			for _, workers := range []int{2, 4, 7} {
				parallel.SetWorkers(workers)
				layer := tc.mk(rand.New(rand.NewSource(5)))
				// Warm-up sizes the workspaces, then a second step runs on
				// warm buffers — both must match the serial reference.
				for step := 0; step < 2; step++ {
					gotOut := layer.Forward(x, true)
					gotGrad := layer.Backward(g)
					if !equalData(gotOut.Data(), wantOut.Data()) {
						t.Fatalf("%s batch=%d workers=%d step=%d: forward diverges from serial",
							tc.name, batch, workers, step)
					}
					if !equalData(gotGrad.Data(), wantGrad.Data()) {
						t.Fatalf("%s batch=%d workers=%d step=%d: input grad diverges from serial",
							tc.name, batch, workers, step)
					}
					for pi, pg := range layer.Grads() {
						if !equalData(pg.Data(), wantParamGrads[pi].Data()) {
							t.Fatalf("%s batch=%d workers=%d step=%d: param grad %d diverges from serial",
								tc.name, batch, workers, step, pi)
						}
					}
					// The serial reference ran one step; grads of stateless
					// accumulation layers are recomputed each Backward, so
					// repeating the step must reproduce them exactly.
				}
			}
		}
	}
}

func cloneAll(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

func equalData(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestModelPoolParallelBitIdentical trains a small conv+bn+pool+dense model
// for a few steps under serial and oversized pools and requires bit-equal
// parameter vectors — the end-to-end form of the determinism guarantee.
func TestModelPoolParallelBitIdentical(t *testing.T) {
	restorePool(t)
	parallel.SetMinWork(16)

	run := func() []float64 {
		rng := rand.New(rand.NewSource(33))
		m := NewModel(
			NewConv2D(2, 4, 3, 1, 1, rng),
			NewBatchNorm(4),
			NewReLU(),
			NewMaxPool2D(2),
			NewFlatten(),
			NewDense(4*4*4, 5, rng),
		)
		x := tensor.Randn(rand.New(rand.NewSource(34)), 0, 1, 6, 2, 8, 8)
		labels := []int{0, 1, 2, 3, 4, 0}
		var loss SoftmaxCrossEntropy
		for step := 0; step < 3; step++ {
			out := m.Forward(x, true)
			res, err := loss.Eval(out, labels)
			if err != nil {
				t.Fatal(err)
			}
			m.Backward(res.Grad)
			params, grads := m.Params(), m.Grads()
			for i, p := range params {
				pd, gd := p.Data(), grads[i].Data()
				for j := range pd {
					pd[j] -= 0.01 * gd[j]
				}
			}
		}
		return m.StateVector()
	}

	parallel.SetWorkers(1)
	want := run()
	for _, workers := range []int{2, 4, 8} {
		parallel.SetWorkers(workers)
		got := run()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: state length %d != %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: state[%d] = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}
