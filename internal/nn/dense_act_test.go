package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// denseActComposition returns the fused layer and the equivalent two-layer
// stack built from the same seed. NewDenseAct draws exactly NewDense's
// values, so both start from bit-identical parameters.
func denseActComposition(act Activation, in, out int) (*Dense, *Model) {
	fused := NewDenseAct(in, out, act, rand.New(rand.NewSource(51)))
	plain := NewDense(in, out, rand.New(rand.NewSource(51)))
	var actLayer Layer
	switch act {
	case ActReLU:
		actLayer = NewReLU()
	case ActTanh:
		actLayer = NewTanh()
	}
	return fused, NewModel(plain, actLayer)
}

// TestDenseActBitIdenticalComposition is the fused-dense correctness gate:
// for both activations, a training step of the fused layer must produce
// bit-identical output, input gradient, and parameter gradients to the
// Dense→activation two-layer composition, on cold and warm workspaces and
// across batch sizes (including gradients carrying exact zeros, which the
// GEMM zero-skip convention must treat identically on both routes).
func TestDenseActBitIdenticalComposition(t *testing.T) {
	for _, act := range []Activation{ActReLU, ActTanh} {
		for _, batch := range []int{1, 3, 8} {
			fused, stack := denseActComposition(act, 13, 9)
			x := tensor.Randn(rand.New(rand.NewSource(52)), 0, 1, batch, 13)
			g := tensor.Randn(rand.New(rand.NewSource(53)), 0, 1, batch, 9)
			gd := g.Data()
			zrng := rand.New(rand.NewSource(54))
			for i := range gd {
				if zrng.Intn(4) == 0 {
					gd[i] = 0
				}
			}
			for step := 0; step < 2; step++ {
				fusedOut := fused.Forward(x, true)
				stackOut := stack.Forward(x, true)
				if !equalData(fusedOut.Data(), stackOut.Data()) {
					t.Fatalf("%s batch=%d step=%d: fused forward diverges from composition", act, batch, step)
				}
				fusedGin := fused.Backward(g)
				stackGin := stack.Backward(g)
				if !equalData(fusedGin.Data(), stackGin.Data()) {
					t.Fatalf("%s batch=%d step=%d: fused input grad diverges from composition", act, batch, step)
				}
				want := stack.GradVector()
				got := append(append([]float64(nil), fused.gw.Data()...), fused.gb.Data()...)
				if !equalData(got, want) {
					t.Fatalf("%s batch=%d step=%d: fused param grads diverge from composition", act, batch, step)
				}
			}
		}
	}
}

// TestDenseActClone pins clone semantics for the fused layer: the clone keeps
// the activation, deep-copies parameters, and trains independently.
func TestDenseActClone(t *testing.T) {
	orig := NewDenseAct(6, 4, ActTanh, rand.New(rand.NewSource(55)))
	clone := orig.cloneLayer().(*Dense)
	if clone.Act != ActTanh {
		t.Fatalf("clone dropped the fused activation: %v", clone.Act)
	}
	if !equalData(clone.w.Data(), orig.w.Data()) {
		t.Fatal("clone weights differ")
	}
	x := tensor.Randn(rand.New(rand.NewSource(56)), 0, 1, 3, 6)
	out := clone.Forward(x, true)
	clone.Backward(out)
	clone.w.Data()[0] += 1
	if clone.w.Data()[0] == orig.w.Data()[0] {
		t.Fatal("clone aliases original weights")
	}
}

// TestDenseActNames pins the fused layers' distinct names (span names feed
// Describe and duplicate detection).
func TestDenseActNames(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	if got := NewDenseAct(3, 4, ActReLU, rng).Name(); got != "dense(3->4)+relu" {
		t.Fatalf("relu name = %q", got)
	}
	if got := NewDenseAct(3, 4, ActTanh, rng).Name(); got != "dense(3->4)+tanh" {
		t.Fatalf("tanh name = %q", got)
	}
	if got := NewDense(3, 4, rng).Name(); got != "dense(3->4)" {
		t.Fatalf("plain name = %q", got)
	}
}
