package nn

import (
	"math"

	"repro/internal/tensor"
)

// Activation workspace slots (shared layout for ReLU and Tanh).
const (
	actSlotOut = iota
	actSlotGradIn
)

// ReLU is the rectified-linear activation max(0, x).
type ReLU struct {
	mask []bool
	ws   tensor.Workspace
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// cloneLayer implements layer cloning with an unshared workspace.
func (r *ReLU) cloneLayer() Layer { return NewReLU() }

// Forward implements Layer. The returned tensor is a workspace buffer valid
// until the next Forward on this layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := r.ws.GetLike(actSlotOut, x)
	data := out.Data()
	copy(data, x.Data())
	if cap(r.mask) < len(data) {
		r.mask = make([]bool, len(data))
	}
	r.mask = r.mask[:len(data)]
	for i, v := range data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			data[i] = 0
		}
	}
	return out
}

// Backward implements Layer. The returned tensor is a workspace buffer valid
// until the next Backward on this layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	grad := r.ws.GetLike(actSlotGradIn, gradOut)
	data := grad.Data()
	copy(data, gradOut.Data())
	for i := range data {
		if !r.mask[i] {
			data[i] = 0
		}
	}
	return grad
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut *tensor.Tensor
	ws      tensor.Workspace
}

var _ Layer = (*Tanh)(nil)

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// cloneLayer implements layer cloning with an unshared workspace.
func (t *Tanh) cloneLayer() Layer { return NewTanh() }

// Forward implements Layer. The returned tensor is a workspace buffer valid
// until the next Forward on this layer.
func (t *Tanh) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := t.ws.GetLike(actSlotOut, x)
	copy(out.Data(), x.Data())
	out.Apply(math.Tanh)
	t.lastOut = out
	return out
}

// Backward implements Layer. The returned tensor is a workspace buffer valid
// until the next Backward on this layer.
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.lastOut == nil {
		panic("nn: tanh Backward before Forward")
	}
	grad := t.ws.GetLike(actSlotGradIn, gradOut)
	gd, od := grad.Data(), t.lastOut.Data()
	copy(gd, gradOut.Data())
	for i := range gd {
		gd[i] *= 1 - od[i]*od[i]
	}
	return grad
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Flatten reshapes [B, ...] inputs to [B, prod(...)]. It is a no-op on 2-D
// inputs.
type Flatten struct {
	lastShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// cloneLayer implements layer cloning.
func (f *Flatten) cloneLayer() Layer { return NewFlatten() }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	f.lastShape = recordShape(f.lastShape, x)
	batch := x.Dim(0)
	return x.MustReshape(batch, x.Len()/batch)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.MustReshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }
