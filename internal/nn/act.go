package nn

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Activation workspace slots (shared layout for ReLU and Tanh).
const (
	actSlotOut = iota
	actSlotGradIn
)

// The activation kernels are purely elementwise, so they fan out over the
// flat element range on the compute pool: chunk boundaries never change the
// per-element arithmetic, keeping parallel output bit-identical to the
// serial loop. The serial decision is taken with parallel.Chunks before any
// closure is built so small steady-state steps stay allocation-free.

// ReLU is the rectified-linear activation max(0, x).
type ReLU struct {
	mask []bool
	ws   tensor.Workspace
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// cloneLayer implements layer cloning with an unshared workspace.
func (r *ReLU) cloneLayer() Layer { return NewReLU() }

// Forward implements Layer. The returned tensor is a workspace buffer valid
// until the next Forward on this layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := r.ws.GetLike(actSlotOut, x)
	data, xd := out.Data(), x.Data()
	if cap(r.mask) < len(data) {
		r.mask = make([]bool, len(data))
	}
	r.mask = r.mask[:len(data)]
	mask := r.mask
	g := parallel.Grain(1)
	if parallel.Chunks(len(data), g) <= 1 {
		reluForwardRange(data, xd, mask, 0, len(data))
		return out
	}
	parallel.For(len(data), g, func(lo, hi int) {
		reluForwardRange(data, xd, mask, lo, hi)
	})
	return out
}

func reluForwardRange(dst, src []float64, mask []bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		if v := src[i]; v > 0 {
			dst[i] = v
			mask[i] = true
		} else {
			dst[i] = 0
			mask[i] = false
		}
	}
}

// Backward implements Layer. The returned tensor is a workspace buffer valid
// until the next Backward on this layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	grad := r.ws.GetLike(actSlotGradIn, gradOut)
	data, god, mask := grad.Data(), gradOut.Data(), r.mask
	g := parallel.Grain(1)
	if parallel.Chunks(len(data), g) <= 1 {
		reluBackwardRange(data, god, mask, 0, len(data))
		return grad
	}
	parallel.For(len(data), g, func(lo, hi int) {
		reluBackwardRange(data, god, mask, lo, hi)
	})
	return grad
}

func reluBackwardRange(dst, src []float64, mask []bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		if mask[i] {
			dst[i] = src[i]
		} else {
			dst[i] = 0
		}
	}
}

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut *tensor.Tensor
	ws      tensor.Workspace
}

var _ Layer = (*Tanh)(nil)

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// cloneLayer implements layer cloning with an unshared workspace.
func (t *Tanh) cloneLayer() Layer { return NewTanh() }

// tanhOpCost weights math.Tanh against the one-flop unit parallel.Grain
// assumes, so the pool splits tanh loops at proportionally smaller sizes.
const tanhOpCost = 8

// Forward implements Layer. The returned tensor is a workspace buffer valid
// until the next Forward on this layer.
func (t *Tanh) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := t.ws.GetLike(actSlotOut, x)
	od, xd := out.Data(), x.Data()
	g := parallel.Grain(tanhOpCost)
	if parallel.Chunks(len(od), g) <= 1 {
		tanhForwardRange(od, xd, 0, len(od))
	} else {
		parallel.For(len(od), g, func(lo, hi int) {
			tanhForwardRange(od, xd, lo, hi)
		})
	}
	t.lastOut = out
	return out
}

func tanhForwardRange(dst, src []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = math.Tanh(src[i])
	}
}

// Backward implements Layer. The returned tensor is a workspace buffer valid
// until the next Backward on this layer.
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.lastOut == nil {
		panic("nn: tanh Backward before Forward")
	}
	grad := t.ws.GetLike(actSlotGradIn, gradOut)
	gd, god, od := grad.Data(), gradOut.Data(), t.lastOut.Data()
	g := parallel.Grain(1)
	if parallel.Chunks(len(gd), g) <= 1 {
		tanhBackwardRange(gd, god, od, 0, len(gd))
		return grad
	}
	parallel.For(len(gd), g, func(lo, hi int) {
		tanhBackwardRange(gd, god, od, lo, hi)
	})
	return grad
}

func tanhBackwardRange(dst, god, od []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = god[i] * (1 - od[i]*od[i])
	}
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Flatten reshapes [B, ...] inputs to [B, prod(...)]. It is a no-op on 2-D
// inputs.
type Flatten struct {
	lastShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// cloneLayer implements layer cloning.
func (f *Flatten) cloneLayer() Layer { return NewFlatten() }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	f.lastShape = recordShape(f.lastShape, x)
	batch := x.Dim(0)
	return x.MustReshape(batch, x.Len()/batch)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.MustReshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }
