package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Pooling workspace slots (shared layout across the pooling layers).
const (
	poolSlotOut = iota
	poolSlotGradIn
)

// MaxPool2D is a 2-D max pooling layer over [B, C, H, W] inputs with a square
// window and equal stride (the common VGG configuration).
type MaxPool2D struct {
	K, Stride int

	argmax    []int
	lastShape []int
	ws        tensor.Workspace
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a max-pooling layer with window k and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k, Stride: k} }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool2d(%d)", p.K) }

// cloneLayer implements layer cloning with an unshared workspace.
func (p *MaxPool2D) cloneLayer() Layer { return &MaxPool2D{K: p.K, Stride: p.Stride} }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s got input %v", p.Name(), x.Shape()))
	}
	batch, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/p.Stride, w/p.Stride
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("nn: %s output empty for input %v", p.Name(), x.Shape()))
	}
	p.lastShape = recordShape(p.lastShape, x)
	out := p.ws.Get4D(poolSlotOut, batch, ch, oh, ow)
	n := out.Len()
	if cap(p.argmax) < n {
		p.argmax = make([]int, n)
	}
	p.argmax = p.argmax[:n]
	xd, od := x.Data(), out.Data()
	for bc := 0; bc < batch*ch; bc++ {
		src := xd[bc*h*w : (bc+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bestIdx := oy*p.Stride*w + ox*p.Stride
				best := src[bestIdx]
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride + ky
					if iy >= h {
						break
					}
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride + kx
						if ix >= w {
							break
						}
						if v := src[iy*w+ix]; v > best {
							best, bestIdx = v, iy*w+ix
						}
					}
				}
				oi := (bc*oh+oy)*ow + ox
				od[oi] = best
				p.argmax[oi] = bc*h*w + bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := p.ws.Get(poolSlotGradIn, p.lastShape...)
	gradIn.Zero() // the argmax scatter below accumulates
	gid, god := gradIn.Data(), gradOut.Data()
	for i, v := range god {
		gid[p.argmax[i]] += v
	}
	return gradIn
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// MaxPool1D is a 1-D max pooling layer over [B, C, L] inputs.
type MaxPool1D struct {
	K, Stride int

	argmax    []int
	lastShape []int
	ws        tensor.Workspace
}

var _ Layer = (*MaxPool1D)(nil)

// NewMaxPool1D returns a 1-D max-pooling layer with window k and stride k.
func NewMaxPool1D(k int) *MaxPool1D { return &MaxPool1D{K: k, Stride: k} }

// Name implements Layer.
func (p *MaxPool1D) Name() string { return fmt.Sprintf("maxpool1d(%d)", p.K) }

// cloneLayer implements layer cloning with an unshared workspace.
func (p *MaxPool1D) cloneLayer() Layer { return &MaxPool1D{K: p.K, Stride: p.Stride} }

// Forward implements Layer.
func (p *MaxPool1D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: %s got input %v", p.Name(), x.Shape()))
	}
	batch, ch, l := x.Dim(0), x.Dim(1), x.Dim(2)
	ol := l / p.Stride
	if ol == 0 {
		panic(fmt.Sprintf("nn: %s output empty for input %v", p.Name(), x.Shape()))
	}
	p.lastShape = recordShape(p.lastShape, x)
	out := p.ws.Get3D(poolSlotOut, batch, ch, ol)
	n := out.Len()
	if cap(p.argmax) < n {
		p.argmax = make([]int, n)
	}
	p.argmax = p.argmax[:n]
	xd, od := x.Data(), out.Data()
	for bc := 0; bc < batch*ch; bc++ {
		src := xd[bc*l : (bc+1)*l]
		for o := 0; o < ol; o++ {
			bestIdx := o * p.Stride
			best := src[bestIdx]
			for k := 1; k < p.K; k++ {
				i := o*p.Stride + k
				if i >= l {
					break
				}
				if v := src[i]; v > best {
					best, bestIdx = v, i
				}
			}
			oi := bc*ol + o
			od[oi] = best
			p.argmax[oi] = bc*l + bestIdx
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool1D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := p.ws.Get(poolSlotGradIn, p.lastShape...)
	gradIn.Zero() // the argmax scatter below accumulates
	gid, god := gradIn.Data(), gradOut.Data()
	for i, v := range god {
		gid[p.argmax[i]] += v
	}
	return gradIn
}

// Params implements Layer.
func (p *MaxPool1D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool1D) Grads() []*tensor.Tensor { return nil }

// GlobalAvgPool averages over all spatial positions, mapping [B, C, ...] to
// [B, C]. It works for both 2-D (4-D tensors) and 1-D (3-D tensors) inputs.
type GlobalAvgPool struct {
	lastShape []int
	ws        tensor.Workspace
}

var _ Layer = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return "globalavgpool" }

// cloneLayer implements layer cloning with an unshared workspace.
func (p *GlobalAvgPool) cloneLayer() Layer { return NewGlobalAvgPool() }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() < 3 {
		panic(fmt.Sprintf("nn: %s got input %v", p.Name(), x.Shape()))
	}
	batch, ch := x.Dim(0), x.Dim(1)
	spatial := x.Len() / (batch * ch)
	p.lastShape = recordShape(p.lastShape, x)
	out := p.ws.Get2D(poolSlotOut, batch, ch)
	xd, od := x.Data(), out.Data()
	inv := 1.0 / float64(spatial)
	for bc := 0; bc < batch*ch; bc++ {
		s := 0.0
		for _, v := range xd[bc*spatial : (bc+1)*spatial] {
			s += v
		}
		od[bc] = s * inv
	}
	return out
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := p.ws.Get(poolSlotGradIn, p.lastShape...)
	batch, ch := p.lastShape[0], p.lastShape[1]
	spatial := gradIn.Len() / (batch * ch)
	gid, god := gradIn.Data(), gradOut.Data()
	inv := 1.0 / float64(spatial)
	for bc := 0; bc < batch*ch; bc++ {
		g := god[bc] * inv
		dst := gid[bc*spatial : (bc+1)*spatial]
		for i := range dst {
			dst[i] = g
		}
	}
	return gradIn
}

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }

// AvgPool2D is a 2-D average pooling layer with window k and stride k, used by
// ResNet20's downsampling shortcut-free variant when needed.
type AvgPool2D struct {
	K int

	lastShape []int
	ws        tensor.Workspace
}

var _ Layer = (*AvgPool2D)(nil)

// NewAvgPool2D returns an average pooling layer with window k and stride k.
func NewAvgPool2D(k int) *AvgPool2D { return &AvgPool2D{K: k} }

// Name implements Layer.
func (p *AvgPool2D) Name() string { return fmt.Sprintf("avgpool2d(%d)", p.K) }

// cloneLayer implements layer cloning with an unshared workspace.
func (p *AvgPool2D) cloneLayer() Layer { return &AvgPool2D{K: p.K} }

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s got input %v", p.Name(), x.Shape()))
	}
	batch, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/p.K, w/p.K
	p.lastShape = recordShape(p.lastShape, x)
	out := p.ws.Get4D(poolSlotOut, batch, ch, oh, ow)
	xd, od := x.Data(), out.Data()
	inv := 1.0 / float64(p.K*p.K)
	for bc := 0; bc < batch*ch; bc++ {
		src := xd[bc*h*w : (bc+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						s += src[(oy*p.K+ky)*w+ox*p.K+kx]
					}
				}
				od[(bc*oh+oy)*ow+ox] = s * inv
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := p.ws.Get(poolSlotGradIn, p.lastShape...)
	gradIn.Zero() // the window scatter below accumulates
	batch, ch, h, w := p.lastShape[0], p.lastShape[1], p.lastShape[2], p.lastShape[3]
	oh, ow := h/p.K, w/p.K
	gid, god := gradIn.Data(), gradOut.Data()
	inv := 1.0 / float64(p.K*p.K)
	for bc := 0; bc < batch*ch; bc++ {
		dst := gid[bc*h*w : (bc+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := god[(bc*oh+oy)*ow+ox] * inv
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						dst[(oy*p.K+ky)*w+ox*p.K+kx] += g
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *AvgPool2D) Grads() []*tensor.Tensor { return nil }
