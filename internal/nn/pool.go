package nn

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Pooling workspace slots (shared layout across the pooling layers).
const (
	poolSlotOut = iota
	poolSlotGradIn
)

// Every pooling kernel is independent per (batch, channel) plane, so the
// loops fan out over the flattened batch*channel dimension on the compute
// pool. Chunk boundaries fall on plane boundaries, each plane's arithmetic
// order is unchanged, and planes write disjoint output regions, so parallel
// results are bit-identical to the serial loops. The serial decision is
// taken with parallel.Chunks before any closure is built so small
// steady-state steps stay allocation-free.

// scatterRange accumulates god[lo:hi) into gid at the cached argmax
// positions — the shared backward kernel of the max-pooling layers. Chunk
// ranges must align to plane boundaries: argmax targets stay inside the
// source plane, so aligned chunks never write the same element.
func scatterRange(gid, god []float64, argmax []int, lo, hi int) {
	for i := lo; i < hi; i++ {
		gid[argmax[i]] += god[i]
	}
}

// MaxPool2D is a 2-D max pooling layer over [B, C, H, W] inputs with a square
// window and equal stride (the common VGG configuration).
type MaxPool2D struct {
	K, Stride int

	argmax    []int
	lastShape []int
	ws        tensor.Workspace
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a max-pooling layer with window k and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k, Stride: k} }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool2d(%d)", p.K) }

// cloneLayer implements layer cloning with an unshared workspace.
func (p *MaxPool2D) cloneLayer() Layer { return &MaxPool2D{K: p.K, Stride: p.Stride} }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s got input %v", p.Name(), x.Shape()))
	}
	batch, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/p.Stride, w/p.Stride
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("nn: %s output empty for input %v", p.Name(), x.Shape()))
	}
	p.lastShape = recordShape(p.lastShape, x)
	out := p.ws.Get4D(poolSlotOut, batch, ch, oh, ow)
	n := out.Len()
	if cap(p.argmax) < n {
		p.argmax = make([]int, n)
	}
	p.argmax = p.argmax[:n]
	xd, od, argmax := x.Data(), out.Data(), p.argmax
	nbc := batch * ch
	g := parallel.Grain(oh * ow * p.K * p.K)
	if parallel.Chunks(nbc, g) <= 1 {
		p.forwardRange(xd, od, argmax, 0, nbc, h, w, oh, ow)
		return out
	}
	parallel.For(nbc, g, func(lo, hi int) {
		p.forwardRange(xd, od, argmax, lo, hi, h, w, oh, ow)
	})
	return out
}

// forwardRange pools planes [bc0,bc1).
func (p *MaxPool2D) forwardRange(xd, od []float64, argmax []int, bc0, bc1, h, w, oh, ow int) {
	for bc := bc0; bc < bc1; bc++ {
		src := xd[bc*h*w : (bc+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bestIdx := oy*p.Stride*w + ox*p.Stride
				best := src[bestIdx]
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride + ky
					if iy >= h {
						break
					}
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride + kx
						if ix >= w {
							break
						}
						if v := src[iy*w+ix]; v > best {
							best, bestIdx = v, iy*w+ix
						}
					}
				}
				oi := (bc*oh+oy)*ow + ox
				od[oi] = best
				argmax[oi] = bc*h*w + bestIdx
			}
		}
	}
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := p.ws.Get(poolSlotGradIn, p.lastShape...)
	gradIn.Zero() // the argmax scatter below accumulates
	gid, god, argmax := gradIn.Data(), gradOut.Data(), p.argmax
	nbc := p.lastShape[0] * p.lastShape[1]
	spatial := len(god) / nbc
	g := parallel.Grain(spatial)
	if parallel.Chunks(nbc, g) <= 1 {
		scatterRange(gid, god, argmax, 0, len(god))
		return gradIn
	}
	parallel.For(nbc, g, func(lo, hi int) {
		scatterRange(gid, god, argmax, lo*spatial, hi*spatial)
	})
	return gradIn
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// MaxPool1D is a 1-D max pooling layer over [B, C, L] inputs.
type MaxPool1D struct {
	K, Stride int

	argmax    []int
	lastShape []int
	ws        tensor.Workspace
}

var _ Layer = (*MaxPool1D)(nil)

// NewMaxPool1D returns a 1-D max-pooling layer with window k and stride k.
func NewMaxPool1D(k int) *MaxPool1D { return &MaxPool1D{K: k, Stride: k} }

// Name implements Layer.
func (p *MaxPool1D) Name() string { return fmt.Sprintf("maxpool1d(%d)", p.K) }

// cloneLayer implements layer cloning with an unshared workspace.
func (p *MaxPool1D) cloneLayer() Layer { return &MaxPool1D{K: p.K, Stride: p.Stride} }

// Forward implements Layer.
func (p *MaxPool1D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 3 {
		panic(fmt.Sprintf("nn: %s got input %v", p.Name(), x.Shape()))
	}
	batch, ch, l := x.Dim(0), x.Dim(1), x.Dim(2)
	ol := l / p.Stride
	if ol == 0 {
		panic(fmt.Sprintf("nn: %s output empty for input %v", p.Name(), x.Shape()))
	}
	p.lastShape = recordShape(p.lastShape, x)
	out := p.ws.Get3D(poolSlotOut, batch, ch, ol)
	n := out.Len()
	if cap(p.argmax) < n {
		p.argmax = make([]int, n)
	}
	p.argmax = p.argmax[:n]
	xd, od, argmax := x.Data(), out.Data(), p.argmax
	nbc := batch * ch
	g := parallel.Grain(ol * p.K)
	if parallel.Chunks(nbc, g) <= 1 {
		p.forwardRange(xd, od, argmax, 0, nbc, l, ol)
		return out
	}
	parallel.For(nbc, g, func(lo, hi int) {
		p.forwardRange(xd, od, argmax, lo, hi, l, ol)
	})
	return out
}

// forwardRange pools planes [bc0,bc1).
func (p *MaxPool1D) forwardRange(xd, od []float64, argmax []int, bc0, bc1, l, ol int) {
	for bc := bc0; bc < bc1; bc++ {
		src := xd[bc*l : (bc+1)*l]
		for o := 0; o < ol; o++ {
			bestIdx := o * p.Stride
			best := src[bestIdx]
			for k := 1; k < p.K; k++ {
				i := o*p.Stride + k
				if i >= l {
					break
				}
				if v := src[i]; v > best {
					best, bestIdx = v, i
				}
			}
			oi := bc*ol + o
			od[oi] = best
			argmax[oi] = bc*l + bestIdx
		}
	}
}

// Backward implements Layer.
func (p *MaxPool1D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := p.ws.Get(poolSlotGradIn, p.lastShape...)
	gradIn.Zero() // the argmax scatter below accumulates
	gid, god, argmax := gradIn.Data(), gradOut.Data(), p.argmax
	nbc := p.lastShape[0] * p.lastShape[1]
	ol := len(god) / nbc
	g := parallel.Grain(ol)
	if parallel.Chunks(nbc, g) <= 1 {
		scatterRange(gid, god, argmax, 0, len(god))
		return gradIn
	}
	parallel.For(nbc, g, func(lo, hi int) {
		scatterRange(gid, god, argmax, lo*ol, hi*ol)
	})
	return gradIn
}

// Params implements Layer.
func (p *MaxPool1D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool1D) Grads() []*tensor.Tensor { return nil }

// GlobalAvgPool averages over all spatial positions, mapping [B, C, ...] to
// [B, C]. It works for both 2-D (4-D tensors) and 1-D (3-D tensors) inputs.
type GlobalAvgPool struct {
	lastShape []int
	ws        tensor.Workspace
}

var _ Layer = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return "globalavgpool" }

// cloneLayer implements layer cloning with an unshared workspace.
func (p *GlobalAvgPool) cloneLayer() Layer { return NewGlobalAvgPool() }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() < 3 {
		panic(fmt.Sprintf("nn: %s got input %v", p.Name(), x.Shape()))
	}
	batch, ch := x.Dim(0), x.Dim(1)
	spatial := x.Len() / (batch * ch)
	p.lastShape = recordShape(p.lastShape, x)
	out := p.ws.Get2D(poolSlotOut, batch, ch)
	xd, od := x.Data(), out.Data()
	nbc := batch * ch
	g := parallel.Grain(spatial)
	if parallel.Chunks(nbc, g) <= 1 {
		globalAvgForwardRange(od, xd, 0, nbc, spatial)
		return out
	}
	parallel.For(nbc, g, func(lo, hi int) {
		globalAvgForwardRange(od, xd, lo, hi, spatial)
	})
	return out
}

// globalAvgForwardRange averages planes [bc0,bc1).
func globalAvgForwardRange(od, xd []float64, bc0, bc1, spatial int) {
	inv := 1.0 / float64(spatial)
	for bc := bc0; bc < bc1; bc++ {
		s := 0.0
		for _, v := range xd[bc*spatial : (bc+1)*spatial] {
			s += v
		}
		od[bc] = s * inv
	}
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := p.ws.Get(poolSlotGradIn, p.lastShape...)
	batch, ch := p.lastShape[0], p.lastShape[1]
	spatial := gradIn.Len() / (batch * ch)
	gid, god := gradIn.Data(), gradOut.Data()
	nbc := batch * ch
	g := parallel.Grain(spatial)
	if parallel.Chunks(nbc, g) <= 1 {
		globalAvgBackwardRange(gid, god, 0, nbc, spatial)
		return gradIn
	}
	parallel.For(nbc, g, func(lo, hi int) {
		globalAvgBackwardRange(gid, god, lo, hi, spatial)
	})
	return gradIn
}

// globalAvgBackwardRange broadcasts gradients into planes [bc0,bc1).
func globalAvgBackwardRange(gid, god []float64, bc0, bc1, spatial int) {
	inv := 1.0 / float64(spatial)
	for bc := bc0; bc < bc1; bc++ {
		g := god[bc] * inv
		dst := gid[bc*spatial : (bc+1)*spatial]
		for i := range dst {
			dst[i] = g
		}
	}
}

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }

// AvgPool2D is a 2-D average pooling layer with window k and stride k, used by
// ResNet20's downsampling shortcut-free variant when needed.
type AvgPool2D struct {
	K int

	lastShape []int
	ws        tensor.Workspace
}

var _ Layer = (*AvgPool2D)(nil)

// NewAvgPool2D returns an average pooling layer with window k and stride k.
func NewAvgPool2D(k int) *AvgPool2D { return &AvgPool2D{K: k} }

// Name implements Layer.
func (p *AvgPool2D) Name() string { return fmt.Sprintf("avgpool2d(%d)", p.K) }

// cloneLayer implements layer cloning with an unshared workspace.
func (p *AvgPool2D) cloneLayer() Layer { return &AvgPool2D{K: p.K} }

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s got input %v", p.Name(), x.Shape()))
	}
	batch, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/p.K, w/p.K
	p.lastShape = recordShape(p.lastShape, x)
	out := p.ws.Get4D(poolSlotOut, batch, ch, oh, ow)
	xd, od := x.Data(), out.Data()
	nbc := batch * ch
	g := parallel.Grain(oh * ow * p.K * p.K)
	if parallel.Chunks(nbc, g) <= 1 {
		p.forwardRange(od, xd, 0, nbc, h, w, oh, ow)
		return out
	}
	parallel.For(nbc, g, func(lo, hi int) {
		p.forwardRange(od, xd, lo, hi, h, w, oh, ow)
	})
	return out
}

// forwardRange pools planes [bc0,bc1).
func (p *AvgPool2D) forwardRange(od, xd []float64, bc0, bc1, h, w, oh, ow int) {
	inv := 1.0 / float64(p.K*p.K)
	for bc := bc0; bc < bc1; bc++ {
		src := xd[bc*h*w : (bc+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						s += src[(oy*p.K+ky)*w+ox*p.K+kx]
					}
				}
				od[(bc*oh+oy)*ow+ox] = s * inv
			}
		}
	}
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := p.ws.Get(poolSlotGradIn, p.lastShape...)
	gradIn.Zero() // the window scatter below accumulates
	batch, ch, h, w := p.lastShape[0], p.lastShape[1], p.lastShape[2], p.lastShape[3]
	oh, ow := h/p.K, w/p.K
	gid, god := gradIn.Data(), gradOut.Data()
	nbc := batch * ch
	g := parallel.Grain(h * w)
	if parallel.Chunks(nbc, g) <= 1 {
		p.backwardRange(gid, god, 0, nbc, h, w, oh, ow)
		return gradIn
	}
	parallel.For(nbc, g, func(lo, hi int) {
		p.backwardRange(gid, god, lo, hi, h, w, oh, ow)
	})
	return gradIn
}

// backwardRange scatters gradients into planes [bc0,bc1).
func (p *AvgPool2D) backwardRange(gid, god []float64, bc0, bc1, h, w, oh, ow int) {
	inv := 1.0 / float64(p.K*p.K)
	for bc := bc0; bc < bc1; bc++ {
		dst := gid[bc*h*w : (bc+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := god[(bc*oh+oy)*ow+ox] * inv
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						dst[(oy*p.K+ky)*w+ox*p.K+kx] += g
					}
				}
			}
		}
	}
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *AvgPool2D) Grads() []*tensor.Tensor { return nil }
