package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/defense"
	"repro/internal/faultnet"
	"repro/internal/fl"
	"repro/internal/flnet"
	"repro/internal/model"
	"repro/internal/optim"
	"repro/internal/telemetry"
)

// The chaos soak drives a real multi-client federation through a seeded
// failure schedule — server crash/resume cycles, checkpoint corruption,
// client restarts, connection resets — and asserts the crash-safe
// lifecycle invariants end to end:
//
//   - the faulted run's final global model is bit-identical to an
//     unfaulted run of the same seed (round-replay determinism);
//   - quarantine penalties survive every server restart (a poisoner is
//     not paroled by crashing the server);
//   - a corrupted newest checkpoint generation falls back to the
//     previous intact generation instead of failing or half-loading;
//   - graceful drain checkpoints, notifies clients, reports "draining"
//     on /healthz, and leaves zero goroutines behind.

const soakSeed = 7

// httpClient disables keep-alives so probe requests leave no idle
// transport goroutines behind for the leak guard to trip on.
var httpClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

// soakBed mirrors the flnet test fixture: deterministic data/model
// fixtures shared by one federation, with fresh trainers per run.
type soakBed struct {
	t          *testing.T
	spec       data.Spec
	shards     []*data.Dataset
	split      *data.FLSplit
	numClients int
}

func newSoakBed(t *testing.T, numClients int) *soakBed {
	t.Helper()
	spec, err := data.Lookup("purchase100")
	if err != nil {
		t.Fatal(err)
	}
	spec.Records = 400
	ds, err := data.Generate(spec, soakSeed)
	if err != nil {
		t.Fatal(err)
	}
	split := data.NewFLSplit(ds, rand.New(rand.NewSource(soakSeed)))
	shards, err := data.PartitionIID(split.Train, numClients, rand.New(rand.NewSource(soakSeed)))
	if err != nil {
		t.Fatal(err)
	}
	return &soakBed{t: t, spec: spec, shards: shards, split: split, numClients: numClients}
}

// trainer builds a fresh replay-enabled trainer for client id: every
// round's batch order is a pure function of (soakSeed, round, id), so a
// retrained round after a crash-resume reproduces its first attempt
// bit-for-bit.
func (b *soakBed) trainer(id int) *fl.Client {
	b.t.Helper()
	m, err := model.Build(b.spec, rand.New(rand.NewSource(soakSeed+2)))
	if err != nil {
		b.t.Fatal(err)
	}
	tr, err := fl.NewClient(id, m, b.shards[id], optim.NewSGD(0.1, 0), 32, 1,
		rand.New(rand.NewSource(soakSeed+100+int64(id))))
	if err != nil {
		b.t.Fatal(err)
	}
	tr.EnableRoundReplay(soakSeed)
	return tr
}

func (b *soakBed) defense(name string) fl.Defense {
	b.t.Helper()
	d, err := defense.New(name, soakSeed, b.numClients)
	if err != nil {
		b.t.Fatal(err)
	}
	m, err := model.Build(b.spec, rand.New(rand.NewSource(soakSeed+2)))
	if err != nil {
		b.t.Fatal(err)
	}
	if err := d.Bind(fl.InfoOf(m)); err != nil {
		b.t.Fatal(err)
	}
	return d
}

func (b *soakBed) initialState() []float64 {
	b.t.Helper()
	m, err := model.Build(b.spec, rand.New(rand.NewSource(soakSeed+2)))
	if err != nil {
		b.t.Fatal(err)
	}
	return m.StateVector()
}

func containsID(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// clientHandle is one running client goroutine.
type clientHandle struct {
	cancel context.CancelFunc
	done   chan error
}

// startClient launches RunClient for trainer against addr; the poisoner
// NaN-bombs round 0 only (StopAfter is round-keyed, so a restarted or
// replayed poisoner behaves identically).
func startClient(bed *soakBed, addr string, tr *fl.Client, poisoner bool) *clientHandle {
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	h := &clientHandle{cancel: cancel, done: make(chan error, 1)}
	def := bed.defense("none")
	if poisoner {
		def = adversary.Wrap(def, soakSeed, adversary.Mark(
			adversary.Plan{Kind: adversary.NaNBomb, StopAfter: 1}, tr.ID))
	}
	go func() {
		_, err := flnet.RunClient(ctx, flnet.ClientConfig{
			Addr:        addr,
			Trainer:     tr,
			Defense:     def,
			MaxRetries:  12,
			BaseBackoff: 20 * time.Millisecond,
		})
		h.done <- err
	}()
	return h
}

// soakServer is one server incarnation.
type soakServer struct {
	srv    *flnet.Server
	cancel context.CancelFunc
	out    chan error
	state  []float64
}

// startIncarnation listens on addr (":0" derives an ephemeral port; a
// restart rebinds the previous address) and runs a server, optionally
// resetting the first accepted connection via faultnet (the partition
// injection).
func startIncarnation(t *testing.T, bed *soakBed, addr, ckpt string, rounds int, resetFirstConn bool) (*soakServer, string) {
	t.Helper()
	inner, err := net.Listen("tcp", addr)
	for retry := time.Now().Add(5 * time.Second); err != nil && addr != "127.0.0.1:0" && time.Now().Before(retry); {
		// A restart rebinds the crashed incarnation's exact address; give
		// the kernel a beat to release it (sockets the old process closed
		// moments ago can briefly hold the port).
		time.Sleep(20 * time.Millisecond)
		inner, err = net.Listen("tcp", addr)
	}
	if err != nil {
		t.Fatal(err)
	}
	var schedule faultnet.Schedule
	if resetFirstConn {
		schedule = func(i int) faultnet.Plan {
			if i == 0 {
				return faultnet.Plan{Kind: faultnet.Reset}
			}
			return faultnet.Plan{}
		}
	}
	ln := faultnet.Listen(inner, schedule)
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClients: bed.numClients,
		// Full quorum: every round waits for all clients (rejoins
		// included), so the participant set — and therefore the aggregate
		// — is deterministic no matter when faults fire.
		MinClients:     bed.numClients,
		Rounds:         rounds,
		RoundDeadline:  60 * time.Second,
		Defense:        bed.defense("none"),
		InitialState:   bed.initialState(),
		IOTimeout:      30 * time.Second,
		CheckpointPath: ckpt,
		Dataset:        "purchase100",
		Listener:       ln,
		Screen:         fl.ScreenConfig{QuarantineRounds: 2},
	})
	if err != nil {
		inner.Close()
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	ss := &soakServer{srv: srv, cancel: cancel, out: make(chan error, 1)}
	go func() {
		state, err := srv.Run(ctx)
		ss.state = state
		ss.out <- err
	}()
	return ss, srv.Addr().String()
}

// waitCheckpointRound polls until the server has persisted at least round
// checkpoint generations (CheckpointRound counts completed rounds).
func waitCheckpointRound(t *testing.T, srv *flnet.Server, round int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for srv.Health().CheckpointRound < round {
		if time.Now().After(deadline) {
			t.Fatalf("server never checkpointed round %d (at %d)", round, srv.Health().CheckpointRound)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// referenceRun runs one unfaulted federation and returns its final global
// state, per-client personalized accuracies, and round reports.
func referenceRun(t *testing.T, bed *soakBed, rounds, poisonerID int) ([]float64, []float64, []flnet.RoundReport) {
	t.Helper()
	ss, addr := startIncarnation(t, bed, "127.0.0.1:0", "", rounds, false)
	defer ss.cancel()
	trainers := make([]*fl.Client, bed.numClients)
	handles := make([]*clientHandle, bed.numClients)
	for id := 0; id < bed.numClients; id++ {
		trainers[id] = bed.trainer(id)
		handles[id] = startClient(bed, addr, trainers[id], id == poisonerID)
	}
	for id, h := range handles {
		if err := <-h.done; err != nil {
			t.Fatalf("reference client %d: %v", id, err)
		}
		h.cancel()
	}
	if err := <-ss.out; err != nil {
		t.Fatalf("reference federation: %v", err)
	}
	accs := make([]float64, bed.numClients)
	for id, tr := range trainers {
		acc, _, err := tr.Evaluate(bed.split.Test)
		if err != nil {
			t.Fatal(err)
		}
		accs[id] = acc
	}
	return ss.state, accs, ss.srv.Reports()
}

// TestChaosSoakAcceptance is the seeded chaos soak: 3 server
// crash/resume cycles mid-federation (one of which corrupts the newest
// checkpoint generation while the server is down), a client restart, and
// a connection reset, all derived from one seed — after which the final
// global model must be bit-identical to the unfaulted reference run and
// the poisoner's quarantine must have survived every restart.
func TestChaosSoakAcceptance(t *testing.T) {
	const (
		numClients = 3
		rounds     = 6
		poisonerID = 2
	)
	guard := NewLeakGuard()
	bed := newSoakBed(t, numClients)

	wantState, wantAccs, wantReports := referenceRun(t, bed, rounds, poisonerID)

	plan := Plan{
		Rounds:      rounds,
		NumClients:  numClients,
		Crashes:     3,
		Corruptions: 1,
		Restarts:    1,
		Partitions:  1,
	}
	events := Schedule(soakSeed, plan)
	var crashes, clientEvents []Event
	corruptRounds := make(map[int]bool)
	for _, ev := range events {
		switch ev.Kind {
		case CrashServer:
			crashes = append(crashes, ev)
		case RestartClient:
			clientEvents = append(clientEvents, ev)
		case CorruptCheckpoint:
			corruptRounds[ev.Round] = true
		}
	}
	if len(crashes) < 3 {
		t.Fatalf("schedule produced %d crashes, want >= 3: %+v", len(crashes), events)
	}
	t.Logf("chaos schedule: %+v", events)

	ckpt := filepath.Join(t.TempDir(), "global.ckpt")
	// The first incarnation resets its first accepted connection (the
	// faultnet partition): that client redials with backoff and the round
	// waits for it.
	ss, addr := startIncarnation(t, bed, "127.0.0.1:0", ckpt, rounds, plan.Partitions > 0)

	trainers := make([]*fl.Client, numClients)
	handles := make([]*clientHandle, numClients)
	for id := 0; id < numClients; id++ {
		trainers[id] = bed.trainer(id)
		handles[id] = startClient(bed, addr, trainers[id], id == poisonerID)
	}

	// merged accumulates per-round reports across incarnations; a replayed
	// round's second run overwrites the first (only the replay's aggregate
	// survived).
	merged := make(map[int]flnet.RoundReport)
	record := func(srv *flnet.Server) {
		for _, r := range srv.Reports() {
			merged[r.Round] = r
		}
	}

	corrupted := false
	sawFallback := false
	for i, crash := range crashes {
		waitCheckpointRound(t, ss.srv, crash.Round)

		// Fire any client restart scheduled at or before this crash's
		// round: the old client dies mid-round; a fresh trainer (same
		// replay base, same adversary plan) rejoins and the quorum round
		// waits for it. Restarting even the poisoner is replay-safe: its
		// attack is round-keyed (StopAfter), not process-keyed.
		for j, ev := range clientEvents {
			if ev.Round <= crash.Round && handles[ev.Client] != nil {
				handles[ev.Client].cancel()
				<-handles[ev.Client].done
				trainers[ev.Client] = bed.trainer(ev.Client)
				handles[ev.Client] = startClient(bed, addr, trainers[ev.Client], ev.Client == poisonerID)
				clientEvents[j].Round = rounds + 1 // fired; never again
			}
		}

		// Crash: cancel the incarnation mid-round (round crash.Round is in
		// flight; rounds 0..crash.Round-1 are durable).
		ss.cancel()
		<-ss.out
		record(ss.srv)

		wantStart := crash.Round
		if corruptRounds[crash.Round] {
			// Corrupt the newest generation while the server is down: the
			// resume must fall back to the previous intact generation and
			// replay one extra round.
			if err := CorruptFile(ckpt, soakSeed+int64(crash.Round)); err != nil {
				t.Fatal(err)
			}
			delete(corruptRounds, crash.Round)
			corrupted = true
			wantStart = crash.Round - 1
		}

		// Resume on the same address; surviving clients redial with
		// backoff and are resynced into the resumed round.
		ss, _ = startIncarnation(t, bed, addr, ckpt, rounds, false)
		if got := ss.srv.StartRound(); got != wantStart {
			t.Fatalf("crash %d: resumed at round %d, want %d", i, got, wantStart)
		}
		if got := ss.srv.StartRound(); got < crash.Round {
			for _, ev := range ss.srv.Events() {
				if strings.Contains(ev.Msg, "skipping corrupt checkpoint") {
					sawFallback = true
				}
			}
		}
	}
	if corrupted && !sawFallback {
		t.Fatal("corrupted-generation fallback was never logged by a resumed server")
	}

	for id, h := range handles {
		if err := <-h.done; err != nil {
			t.Fatalf("soak client %d: %v", id, err)
		}
		h.cancel()
	}
	if err := <-ss.out; err != nil {
		t.Fatalf("faulted federation failed: %v", err)
	}
	record(ss.srv)
	ss.cancel()

	// Bit-identity: the faulted run must converge to exactly the reference
	// global model and personalized accuracies.
	if len(ss.state) != len(wantState) {
		t.Fatalf("state lengths differ: %d vs %d", len(ss.state), len(wantState))
	}
	for i := range wantState {
		if ss.state[i] != wantState[i] {
			t.Fatalf("faulted run diverged at coordinate %d: %g vs %g", i, ss.state[i], wantState[i])
		}
	}
	for id, tr := range trainers {
		acc, _, err := tr.Evaluate(bed.split.Test)
		if err != nil {
			t.Fatal(err)
		}
		if acc != wantAccs[id] {
			t.Fatalf("client %d personalized accuracy diverged: %g vs %g", id, acc, wantAccs[id])
		}
	}

	// Quarantine must match the reference round-for-round across every
	// crash: rejected in round 0, excluded while the penalty lasts,
	// readmitted after — regardless of how many times the server restarted
	// in between.
	if len(merged) != rounds {
		t.Fatalf("merged reports cover %d rounds, want %d", len(merged), rounds)
	}
	for _, want := range wantReports {
		got, ok := merged[want.Round]
		if !ok {
			t.Fatalf("no merged report for round %d", want.Round)
		}
		if containsID(want.Rejected, poisonerID) != containsID(got.Rejected, poisonerID) {
			t.Fatalf("round %d rejection diverged: ref %+v vs faulted %+v", want.Round, want, got)
		}
		if containsID(want.Quarantined, poisonerID) != containsID(got.Quarantined, poisonerID) {
			t.Fatalf("round %d quarantine diverged: ref %+v vs faulted %+v", want.Round, want, got)
		}
		if containsID(want.Participants, poisonerID) != containsID(got.Participants, poisonerID) {
			t.Fatalf("round %d participation diverged: ref %+v vs faulted %+v", want.Round, want, got)
		}
	}
	if !containsID(merged[0].Rejected, poisonerID) {
		t.Fatalf("round 0 should reject the poisoner: %+v", merged[0])
	}
	quarantinedRounds := 0
	for r := 1; r < rounds; r++ {
		if containsID(merged[r].Quarantined, poisonerID) {
			quarantinedRounds++
		}
	}
	if quarantinedRounds == 0 {
		t.Fatal("the poisoner was never quarantined in the faulted run")
	}
	if !containsID(merged[rounds-1].Participants, poisonerID) {
		t.Fatalf("the poisoner should be readmitted by the final round: %+v", merged[rounds-1])
	}

	// Everything wound down: no leaked goroutines from any incarnation,
	// client, or fault injector.
	if err := guard.Check(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestDrainLifecycle covers graceful shutdown end to end: Shutdown drains
// the in-flight round, /healthz reports "draining" during the window and
// "drained" after, live clients receive drain frames (and back off without
// burning retries), the drained state is checkpointed, a new server
// resumes from it, and no goroutines leak.
func TestDrainLifecycle(t *testing.T) {
	const (
		numClients = 2
		rounds     = 8
	)
	guard := NewLeakGuard()
	bed := newSoakBed(t, numClients)
	ckpt := filepath.Join(t.TempDir(), "global.ckpt")

	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Delay every server-side read of the first accepted connection: each
	// round takes >= 2s, giving the drain window observable width.
	ln := faultnet.Listen(inner, func(i int) faultnet.Plan {
		if i == 0 {
			return faultnet.Plan{Kind: faultnet.Delay, Delay: 2 * time.Second}
		}
		return faultnet.Plan{}
	})
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClients:     numClients,
		Rounds:         rounds,
		Defense:        bed.defense("none"),
		InitialState:   bed.initialState(),
		IOTimeout:      30 * time.Second,
		CheckpointPath: ckpt,
		Dataset:        "purchase100",
		Listener:       ln,
	})
	if err != nil {
		t.Fatal(err)
	}
	admin, err := telemetry.ServeAdmin("127.0.0.1:0", srv.Health, telemetry.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	adminURL := "http://" + admin.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	srvOut := make(chan error, 1)
	var finalState []float64
	go func() {
		state, err := srv.Run(ctx)
		finalState = state
		srvOut <- err
	}()

	clientCtx, clientCancel := context.WithCancel(context.Background())
	defer clientCancel()
	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Clients are expected to be interrupted by the drain; their
			// terminal error (canceled mid-backoff) is not asserted.
			_, _ = flnet.RunClient(clientCtx, flnet.ClientConfig{
				Addr:        srv.Addr().String(),
				Trainer:     bed.trainer(id),
				Defense:     bed.defense("none"),
				MaxRetries:  5,
				BaseBackoff: 20 * time.Millisecond,
			})
		}(id)
	}

	waitCheckpointRound(t, srv, 1)
	shutdownDone := make(chan error, 1)
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), time.Minute)
	defer shutdownCancel()
	go func() { shutdownDone <- srv.Shutdown(shutdownCtx) }()

	// The in-flight round has >= 2s left (the delayed connection), so the
	// draining window is observable over real HTTP.
	if status := pollHealthz(t, adminURL, "draining", 15*time.Second); status != "draining" {
		t.Fatalf("/healthz never reported draining (last %q)", status)
	}

	if err := <-srvOut; !errors.Is(err, flnet.ErrDraining) {
		t.Fatalf("Run should return ErrDraining, got %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if len(finalState) == 0 {
		t.Fatal("drained Run should still return the partial global state")
	}
	if status := pollHealthz(t, adminURL, "drained", 10*time.Second); status != "drained" {
		t.Fatalf("/healthz should report drained after the drain, got %q", status)
	}
	h := srv.Health()
	if h.CheckpointRound < 1 {
		t.Fatalf("drain should leave a durable checkpoint, got round %d", h.CheckpointRound)
	}

	// Clients received drain frames and backed off politely before this
	// test cancels them; the counter increments before the back-off sleep.
	waitMetric(t, adminURL, "dinar_flnet_client_drain_waits_total", 1, 15*time.Second)
	clientCancel()
	wg.Wait()

	// Telemetry consistency after the storm: drain notices were sent,
	// every live client is gone, and round accounting never went negative.
	metrics := fetchMetrics(t, adminURL)
	if metrics["dinar_flnet_drain_notices_total"] < 1 {
		t.Fatalf("drain notices counter should be positive: %v", metrics["dinar_flnet_drain_notices_total"])
	}
	if metrics["dinar_flnet_live_clients"] != 0 {
		t.Fatalf("live clients gauge should be 0 after the drain, got %v", metrics["dinar_flnet_live_clients"])
	}
	if metrics["dinar_flnet_rounds_started_total"] < metrics["dinar_flnet_rounds_completed_total"] {
		t.Fatalf("rounds started (%v) < completed (%v)",
			metrics["dinar_flnet_rounds_started_total"], metrics["dinar_flnet_rounds_completed_total"])
	}

	// The drained checkpoint resumes: a fresh server picks up at the
	// drained round and finishes the federation.
	ss, addr := startIncarnation(t, bed, "127.0.0.1:0", ckpt, rounds, false)
	resumedFrom := ss.srv.StartRound()
	if resumedFrom < 1 {
		t.Fatalf("resumed server should start past round 0, got %d", resumedFrom)
	}
	handles := make([]*clientHandle, numClients)
	for id := 0; id < numClients; id++ {
		handles[id] = startClient(bed, addr, bed.trainer(id), false)
	}
	for id, h := range handles {
		if err := <-h.done; err != nil {
			t.Fatalf("resumed client %d: %v", id, err)
		}
		h.cancel()
	}
	if err := <-ss.out; err != nil {
		t.Fatalf("resumed federation: %v", err)
	}
	ss.cancel()

	admin.Close() //nolint:errcheck // the deferred Close is the backstop
	if err := guard.Check(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// pollHealthz GETs /healthz until it reports want (or the deadline
// passes), returning the last observed status.
func pollHealthz(t *testing.T, base, want string, wait time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(wait)
	last := ""
	for time.Now().Before(deadline) {
		resp, err := httpClient.Get(base + "/healthz")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		h, err := telemetry.DecodeHealth(body)
		if err != nil {
			t.Fatalf("healthz decode: %v (%s)", err, body)
		}
		last = h.Status
		if last == want {
			return last
		}
		time.Sleep(10 * time.Millisecond)
	}
	return last
}

// fetchMetrics GETs and parses /metrics.
func fetchMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := httpClient.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return ParseMetrics(string(body))
}

// waitMetric polls /metrics until name reaches at least min.
func waitMetric(t *testing.T, base, name string, min float64, wait time.Duration) {
	t.Helper()
	deadline := time.Now().Add(wait)
	for {
		if v := fetchMetrics(t, base)[name]; v >= min {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %v (at %v)", name, min, fetchMetrics(t, base)[name])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPrivateStoreSurvivesClientRestart covers the client half of the
// durable-checkpoint story: a DINAR client persists its private-layer
// store after every round (via the AfterRound hook), and a restarted
// client process restores exactly that store from the newest intact
// generation.
func TestPrivateStoreSurvivesClientRestart(t *testing.T) {
	const (
		numClients = 2
		rounds     = 3
		trackedID  = 1
	)
	guard := NewLeakGuard()
	bed := newSoakBed(t, numClients)
	priv := filepath.Join(t.TempDir(), "private.ckpt")

	ss, addr := startIncarnation(t, bed, "127.0.0.1:0", "", rounds, false)
	defer ss.cancel()

	type storeExporter interface {
		ExportStore(clientID int) map[int][]float64
		ImportStore(clientID int, layers map[int][]float64) error
	}
	defs := make([]fl.Defense, numClients)
	var wg sync.WaitGroup
	errCh := make(chan error, numClients)
	for id := 0; id < numClients; id++ {
		defs[id] = bed.defense("dinar")
		cfg := flnet.ClientConfig{
			Addr:        addr,
			Trainer:     bed.trainer(id),
			Defense:     defs[id],
			MaxRetries:  5,
			BaseBackoff: 20 * time.Millisecond,
		}
		if id == trackedID {
			store := defs[id].(storeExporter)
			cfg.AfterRound = func(round int) {
				err := checkpoint.SavePrivateFile(priv, &checkpoint.PrivateLayers{
					ClientID: trackedID,
					Round:    round,
					Layers:   store.ExportStore(trackedID),
				})
				if err != nil {
					errCh <- fmt.Errorf("private checkpoint after round %d: %w", round, err)
				}
			}
		}
		wg.Add(1)
		go func(cfg flnet.ClientConfig) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			if _, err := flnet.RunClient(ctx, cfg); err != nil {
				errCh <- err
			}
		}(cfg)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := <-ss.out; err != nil {
		t.Fatalf("federation: %v", err)
	}
	ss.cancel()

	// The chain retained one generation per round (bounded by
	// DefaultRetain): the head plus up to DefaultRetain-1 siblings.
	siblings, err := filepath.Glob(priv + ".g*")
	if err != nil {
		t.Fatal(err)
	}
	if len(siblings) != checkpoint.DefaultRetain-1 {
		t.Fatalf("retention kept %d sibling generations, want %d: %v", len(siblings), checkpoint.DefaultRetain-1, siblings)
	}

	// "Restart" the client: a fresh defense instance restores the store
	// from the newest intact generation and must hold exactly the layers
	// the old process last persisted.
	loaded, skipped, err := checkpoint.LoadLatestValidPrivate(priv)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("no generation should be corrupt, skipped %v", skipped)
	}
	if loaded.ClientID != trackedID || loaded.Round != rounds-1 {
		t.Fatalf("loaded store is for client %d round %d, want client %d round %d",
			loaded.ClientID, loaded.Round, trackedID, rounds-1)
	}
	want := defs[trackedID].(storeExporter).ExportStore(trackedID)
	if len(want) == 0 {
		t.Fatal("the DINAR store should hold private layers after training")
	}
	restarted := bed.defense("dinar").(storeExporter)
	if err := restarted.ImportStore(trackedID, loaded.Layers); err != nil {
		t.Fatal(err)
	}
	if got := restarted.ExportStore(trackedID); !reflect.DeepEqual(got, want) {
		t.Fatal("restored private store differs from the live store")
	}

	// Corrupt the head: the restart must fall back to the previous intact
	// generation (round rounds-2) instead of failing.
	if err := CorruptFile(priv, soakSeed); err != nil {
		t.Fatal(err)
	}
	fallback, skipped, err := checkpoint.LoadLatestValidPrivate(priv)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 {
		t.Fatalf("the corrupt head should be skipped, got %v", skipped)
	}
	if fallback.Round != rounds-2 {
		t.Fatalf("fallback generation is round %d, want %d", fallback.Round, rounds-2)
	}

	if err := guard.Check(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	_ = os.Remove(priv)
}
