package chaos

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/defense"
	"repro/internal/faultnet"
	"repro/internal/fl"
	"repro/internal/fleetsim"
	"repro/internal/flnet"
	"repro/internal/telemetry"
)

// scaleParams sizes one simulated-fleet federation.
type scaleParams struct {
	numClients int
	sampleSize int
	minClients int
	rounds     int
	dim        int
	streaming  bool
	// delaySeed jitters per-(client, round) think time; faultSeed assigns
	// faultnet Delay plans to a quarter of the accepted connections. Both
	// perturb arrival order without changing update payloads.
	delaySeed int64
	faultSeed int64
	// partition, when non-nil, makes clients drop the connection instead
	// of answering that round's global broadcast.
	partition func(id, round int) bool
	deadline  time.Duration
}

// runScaleSoak runs one full federation of simulated clients over the
// in-memory listener and returns the final global state, the per-round
// reports, and the fleet's outcome counters.
func runScaleSoak(t *testing.T, p scaleParams) ([]float64, []flnet.RoundReport, *fleetsim.Stats) {
	t.Helper()
	def := defense.NewNone()
	if err := def.Bind(fl.ModelInfo{NumParams: p.dim, NumState: p.dim}); err != nil {
		t.Fatal(err)
	}
	mem := fleetsim.Listen(p.numClients)
	var ln net.Listener = mem
	if p.faultSeed != 0 {
		// A quarter of the connections become stragglers: every server-side
		// read on them sleeps briefly, perturbing arrival order the way slow
		// links would.
		ln = faultnet.Listen(mem, faultnet.RandomSchedule(p.faultSeed,
			faultnet.Plan{}, faultnet.Plan{}, faultnet.Plan{},
			faultnet.Plan{Kind: faultnet.Delay, Delay: 500 * time.Microsecond}))
	}
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClients:    p.numClients,
		MinClients:    p.minClients,
		SampleSize:    p.sampleSize,
		SampleSeed:    41,
		Streaming:     p.streaming,
		Rounds:        p.rounds,
		RoundDeadline: p.deadline,
		Defense:       def,
		InitialState:  make([]float64, p.dim),
		Listener:      ln,
		IOTimeout:     2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()
	fleet := &fleetsim.Fleet{
		N:         p.numClients,
		Dim:       p.dim,
		Seed:      17,
		DelaySeed: p.delaySeed,
		MaxDelay:  2 * time.Millisecond,
		Partition: p.partition,
		Dial:      mem.Dial,
		IOTimeout: 2 * time.Minute,
	}
	statsCh := make(chan *fleetsim.Stats, 1)
	go func() { statsCh <- fleet.Run(ctx) }()

	final, err := srv.Run(ctx)
	if err != nil {
		t.Fatalf("server run (N=%d): %v", p.numClients, err)
	}
	stats := <-statsCh
	reports := srv.Reports()
	if len(reports) != p.rounds {
		t.Fatalf("N=%d: %d round reports, want %d", p.numClients, len(reports), p.rounds)
	}
	for _, r := range reports {
		if len(r.Participants) < p.minClients {
			t.Fatalf("N=%d round %d aggregated %d updates, quorum is %d",
				p.numClients, r.Round, len(r.Participants), p.minClients)
		}
	}
	return final, reports, stats
}

// TestScaleSoakStreamingIdentity proves the streaming fold is exactly the
// materialized aggregate: two federations with the same synthetic-update
// seed and the same sampling seed — but different think-time jitter,
// different faultnet straggler schedules, and opposite aggregation modes —
// must finish with bit-identical global models. The exact fixed-point
// accumulator makes the fold order-invariant, so arrival order (which the
// jitter deliberately scrambles) cannot leak into the result.
func TestScaleSoakStreamingIdentity(t *testing.T) {
	GuardTest(t, 10*time.Second)
	p := scaleParams{
		numClients: 400, sampleSize: 32, minClients: 32,
		rounds: 5, dim: 256,
	}
	if testing.Short() {
		p = scaleParams{
			numClients: 64, sampleSize: 12, minClients: 12,
			rounds: 3, dim: 64,
		}
	}

	p.streaming, p.delaySeed, p.faultSeed = false, 101, 7
	materialized, _, _ := runScaleSoak(t, p)

	p.streaming, p.delaySeed, p.faultSeed = true, 202, 8
	streamed, _, _ := runScaleSoak(t, p)

	if len(materialized) != p.dim || len(streamed) != p.dim {
		t.Fatalf("state lengths %d/%d, want %d", len(materialized), len(streamed), p.dim)
	}
	for i := range materialized {
		if materialized[i] != streamed[i] {
			t.Fatalf("coordinate %d: materialized %v != streamed %v (bit-exact identity violated)",
				i, materialized[i], streamed[i])
		}
	}
}

// TestScaleSoakPartitionedMemory is the overload soak: a sampled,
// streaming federation at two fleet sizes an order of magnitude apart,
// with ~30%% of every cohort dropping the connection mid-round. It
// asserts, via the /metrics endpoint, that
//
//   - every round still completes (the quorum fallback resamples
//     replacements for partitioned cohort members),
//   - replacement draws actually happened, and
//   - peak aggregation memory is O(model): flat (within 2x) from the
//     small fleet to the 10x fleet, and far below the materialized
//     cohort cost of sampleSize x dim payloads.
func TestScaleSoakPartitionedMemory(t *testing.T) {
	GuardTest(t, 15*time.Second)
	small, large := 1000, 10000
	p := scaleParams{
		sampleSize: 64, minClients: 48, rounds: 4, dim: 512,
		streaming: true, delaySeed: 303, faultSeed: 9,
		deadline: 20 * time.Second,
	}
	if testing.Short() {
		small, large = 300, 1000
		p.sampleSize, p.minClients, p.rounds, p.dim = 32, 24, 3, 128
	}
	// A deterministic ~30% of (client, round) pairs are partitioned: the
	// client hangs up on receiving the global instead of replying.
	p.partition = func(id, round int) bool {
		return mix64(uint64(id)<<17^uint64(round)+0x51a4ed55)%10 < 3
	}

	admin, err := telemetry.ServeAdmin("127.0.0.1:0", nil, telemetry.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	adminURL := "http://" + admin.Addr().String()

	peaks := make(map[int]float64)
	for _, n := range []int{small, large} {
		p.numClients = n
		fl.ResetAggPeakBytes()
		before := fetchMetrics(t, adminURL)

		_, reports, stats := runScaleSoak(t, p)

		after := fetchMetrics(t, adminURL)
		if stats.Partitions.Load() == 0 {
			t.Fatalf("N=%d: no partitions fired; the soak tested nothing", n)
		}
		replacements := after["dinar_flnet_sample_replacements_total"] - before["dinar_flnet_sample_replacements_total"]
		if replacements <= 0 {
			t.Fatalf("N=%d: no replacement draws despite %d partitions", n, stats.Partitions.Load())
		}
		sampled := 0
		for _, r := range reports {
			sampled += len(r.Sampled)
		}
		t.Logf("N=%d: %d rounds, %d sampled (incl. %v replacements), %d partitions, %d rejoins, peak agg bytes %v",
			n, len(reports), sampled, replacements, stats.Partitions.Load(), stats.Rejoins.Load(),
			after["dinar_fl_agg_update_bytes_peak"])

		peak := after["dinar_fl_agg_update_bytes_peak"]
		if peak <= 0 {
			t.Fatalf("N=%d: aggregation peak gauge never moved", n)
		}
		peaks[n] = peak
	}

	// O(model), not O(clients x model): 10x the fleet must not move the
	// aggregation peak by more than 2x, and the streaming peak must stay
	// well under the materialized floor of sampleSize update payloads.
	if peaks[large] > 2*peaks[small] {
		t.Fatalf("aggregation peak grew with fleet size: %v bytes at N=%d vs %v at N=%d",
			peaks[large], large, peaks[small], small)
	}
	materializedFloor := float64(p.sampleSize * p.dim * 8)
	if peaks[large] >= materializedFloor/2 {
		t.Fatalf("streaming peak %v bytes is not O(model); materialized cohort floor is %v",
			peaks[large], materializedFloor)
	}
}

// TestScaleSoakAsync drives the async staleness-weighted mode at fleet
// scale: rounds never wait for stragglers, partitioned clients' redials
// land as buffered late updates, and the federation still completes every
// round with a quorum.
func TestScaleSoakAsync(t *testing.T) {
	GuardTest(t, 10*time.Second)
	p := scaleParams{
		numClients: 500, sampleSize: 48, minClients: 32,
		rounds: 5, dim: 128,
		streaming: true, delaySeed: 404, faultSeed: 11,
		deadline: 10 * time.Second,
	}
	if testing.Short() {
		p.numClients, p.sampleSize, p.minClients, p.rounds, p.dim = 120, 24, 16, 3, 64
	}
	p.partition = func(id, round int) bool {
		return mix64(uint64(id)<<9^uint64(round)+0x2545f491)%10 < 2
	}
	def := defense.NewNone()
	if err := def.Bind(fl.ModelInfo{NumParams: p.dim, NumState: p.dim}); err != nil {
		t.Fatal(err)
	}
	mem := fleetsim.Listen(p.numClients)
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClients:     p.numClients,
		MinClients:     p.minClients,
		SampleSize:     p.sampleSize,
		SampleSeed:     43,
		Streaming:      p.streaming,
		AsyncStaleness: 2,
		Rounds:         p.rounds,
		RoundDeadline:  p.deadline,
		Defense:        def,
		InitialState:   make([]float64, p.dim),
		Listener:       mem,
		IOTimeout:      time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	fleet := &fleetsim.Fleet{
		N: p.numClients, Dim: p.dim, Seed: 19,
		DelaySeed: p.delaySeed, MaxDelay: 2 * time.Millisecond,
		Partition: p.partition, Dial: mem.Dial, IOTimeout: time.Minute,
	}
	statsCh := make(chan *fleetsim.Stats, 1)
	go func() { statsCh <- fleet.Run(ctx) }()
	final, err := srv.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stats := <-statsCh
	if len(final) != p.dim {
		t.Fatalf("final state has %d values, want %d", len(final), p.dim)
	}
	reports := srv.Reports()
	if len(reports) != p.rounds {
		t.Fatalf("%d round reports, want %d", len(reports), p.rounds)
	}
	stale := 0
	for _, r := range reports {
		if len(r.Participants) < p.minClients {
			t.Fatalf("round %d aggregated %d updates, quorum is %d", r.Round, len(r.Participants), p.minClients)
		}
		stale += r.Stale
	}
	if stats.Partitions.Load() == 0 {
		t.Fatal("no partitions fired; the async soak tested nothing")
	}
	t.Logf("async soak: %d rounds, %d stale folds, %d partitions, %d rejoins",
		len(reports), stale, stats.Partitions.Load(), stats.Rejoins.Load())
}
