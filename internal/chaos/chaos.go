// Package chaos is the middleware's seeded fault-injection harness: a
// deterministic failure scheduler (server crashes, checkpoint corruption,
// client restarts, network partitions), file-corruption and metric-parsing
// helpers, and a goroutine leak guard. The chaos soak test drives a real
// multi-client federation through the schedule and asserts the crash-safe
// lifecycle invariants: a faulted run converges to the same global model
// bit-for-bit as an unfaulted run of the same seed, quarantine penalties
// survive restarts, and every drain leaves zero goroutines behind.
//
// Everything is derived from one int64 seed, so a failing soak replays
// exactly.
package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
)

// EventKind enumerates the fault classes the scheduler can emit.
type EventKind int

// Fault classes.
const (
	// CrashServer kills the server mid-federation; the harness resumes it
	// from its checkpoint chain.
	CrashServer EventKind = iota + 1
	// CorruptCheckpoint flips a byte of the newest checkpoint generation
	// while the server is down, forcing resume to fall back a generation.
	CorruptCheckpoint
	// RestartClient kills one client and restarts it as a fresh process
	// (rejoining via Hello.LastRound).
	RestartClient
	// PartitionClient injects a connection fault (reset/partition) against
	// one client via faultnet.
	PartitionClient
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case CrashServer:
		return "crash-server"
	case CorruptCheckpoint:
		return "corrupt-checkpoint"
	case RestartClient:
		return "restart-client"
	case PartitionClient:
		return "partition-client"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one scheduled fault, keyed by the federation round it fires at
// (the round granularity makes schedules replayable: wall-clock timing
// races cannot change which state a fault observes).
type Event struct {
	// Round is the checkpoint round the fault waits for before firing.
	Round int
	// Kind is the fault class.
	Kind EventKind
	// Client is the target client id for client faults, -1 for server
	// faults.
	Client int
}

// Plan bounds a seeded schedule.
type Plan struct {
	// Rounds is the federation length; faults are scheduled strictly
	// before the last round so the run can still finish.
	Rounds int
	// NumClients sizes the client-fault target pool.
	NumClients int
	// Crashes is how many server crash/resume cycles to schedule, each at
	// a distinct round in [CrashMinRound, Rounds-1).
	Crashes int
	// CrashMinRound is the earliest round a crash may fire (default 2 —
	// late enough that a first checkpoint, including any round-0 screen
	// verdicts, is already durable).
	CrashMinRound int
	// Corruptions is how many crashes additionally corrupt the newest
	// checkpoint generation while the server is down (capped at Crashes).
	Corruptions int
	// Restarts is how many client restarts to schedule.
	Restarts int
	// Partitions is how many connection faults to schedule.
	Partitions int
}

// mix64 is the SplitMix64 finalizer, the same mixing the repo's other
// seeded components use.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Schedule derives a deterministic fault schedule from seed: same seed
// and plan, same events, in firing order. Crash rounds are distinct so
// every crash observes fresh progress; corruptions ride on the first
// crashes of the schedule.
func Schedule(seed int64, p Plan) []Event {
	rng := rand.New(rand.NewSource(int64(mix64(uint64(seed)))))
	minRound := p.CrashMinRound
	if minRound < 2 {
		minRound = 2
	}
	// Faults fire on rounds [minRound, Rounds-1): the last round stays
	// clean so the federation can always complete.
	span := p.Rounds - 1 - minRound
	if span < 1 {
		span = 1
	}
	var evs []Event
	perm := rng.Perm(span)
	for i := 0; i < p.Crashes; i++ {
		evs = append(evs, Event{Round: minRound + perm[i%len(perm)], Kind: CrashServer, Client: -1})
	}
	corruptions := p.Corruptions
	if corruptions > p.Crashes {
		corruptions = p.Crashes
	}
	for i := 0; i < corruptions; i++ {
		// Same round as crash i: the corruption happens while that crash
		// holds the server down.
		evs = append(evs, Event{Round: evs[i].Round, Kind: CorruptCheckpoint, Client: -1})
	}
	for i := 0; i < p.Restarts; i++ {
		evs = append(evs, Event{Round: minRound + rng.Intn(span), Kind: RestartClient, Client: rng.Intn(p.NumClients)})
	}
	for i := 0; i < p.Partitions; i++ {
		evs = append(evs, Event{Round: minRound + rng.Intn(span), Kind: PartitionClient, Client: rng.Intn(p.NumClients)})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Round != evs[j].Round {
			return evs[i].Round < evs[j].Round
		}
		return evs[i].Kind < evs[j].Kind
	})
	return evs
}

// CorruptFile flips one byte of the file at path in place (no atomic
// rename — this simulates bit rot / a torn write, not a well-behaved
// writer). The flipped offset is derived from seed, so a corruption is as
// replayable as everything else in the schedule.
func CorruptFile(path string, seed int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chaos: corrupt %s: %w", path, err)
	}
	if len(data) == 0 {
		return fmt.Errorf("chaos: corrupt %s: file is empty", path)
	}
	off := int(mix64(uint64(seed)) % uint64(len(data)))
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("chaos: corrupt %s: %w", path, err)
	}
	return nil
}

// ParseMetrics parses the Prometheus text exposition format (the subset
// telemetry.Registry.WritePrometheus emits) into metric name -> value.
// Labeled series (histogram buckets) are skipped; counters, gauges, and
// histogram _count/_sum series are returned.
func ParseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out
}
