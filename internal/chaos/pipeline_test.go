package chaos

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/fleetsim"
	"repro/internal/flnet"
	"repro/internal/telemetry"
)

// reportSig renders a round report's deterministic fields so two runs can
// be compared for exact equality. Wall-clock timings are excluded, and the
// ID lists are sorted: membership is deterministic, arrival order is not.
// Sampled keeps its order — the cohort draw is a seeded permutation.
func reportSig(r flnet.RoundReport) string {
	sorted := func(ids []int) []int {
		out := append([]int(nil), ids...)
		sort.Ints(out)
		return out
	}
	return fmt.Sprintf("round=%d participants=%v dropped=%v rejected=%v quarantined=%v clipped=%v sampled=%v stale=%d err=%v",
		r.Round, sorted(r.Participants), sorted(r.Dropped), sorted(r.Rejected), sorted(r.Quarantined), sorted(r.Clipped), r.Sampled, r.Stale, r.Err)
}

// histCount extracts a histogram's _count sample from a Prometheus
// exposition.
func histCount(t *testing.T, exposition, name string) int {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		var v int
		if _, err := fmt.Sscanf(line, name+"_count %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("exposition has no %s_count sample", name)
	return 0
}

// histSum extracts a histogram's _sum sample from a Prometheus
// exposition.
func histSum(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+"_sum %g", &v); err == nil {
			return v
		}
	}
	t.Fatalf("exposition has no %s_sum sample", name)
	return 0
}

// pipelineRun is one complete federation with checkpointing, returning
// its final state, reports, and the run's private telemetry registry.
func pipelineRun(t *testing.T, ctx context.Context, pipeline bool, ckpt string, rounds, numClients, dim int) ([]float64, []flnet.RoundReport, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	bed := newSampledBed(t, flnet.ServerConfig{
		NumClients:     numClients,
		Rounds:         rounds,
		InitialState:   make([]float64, dim),
		CheckpointPath: ckpt,
		Pipeline:       pipeline,
		Registry:       reg,
		IOTimeout:      30 * time.Second,
	}, &fleetsim.Fleet{
		N: numClients, Dim: dim, Seed: 77,
		// Arrival-order jitter: the identity must hold under perturbed
		// timing, not just the lockstep schedule.
		DelaySeed: 13, MaxDelay: 2 * time.Millisecond,
		IOTimeout: 30 * time.Second,
	})
	statsCh := make(chan *fleetsim.Stats, 1)
	type runResult struct {
		state []float64
		err   error
	}
	runCh := make(chan runResult, 1)
	go func() { statsCh <- bed.fleet.Run(ctx) }()
	go func() {
		st, err := bed.srv.Run(ctx)
		runCh <- runResult{state: st, err: err}
	}()
	res := <-runCh
	if res.err != nil {
		t.Fatalf("run (pipeline=%v): %v", pipeline, res.err)
	}
	<-statsCh
	// The served final state and the checkpoint chain's head must agree:
	// the head is the final round's snapshot, even when that write was
	// pipelined behind the last broadcast.
	snap, _, err := checkpoint.LoadLatestValid(ckpt)
	if err != nil {
		t.Fatalf("load checkpoint chain (pipeline=%v): %v", pipeline, err)
	}
	if !equalStates(res.state, snap.State) {
		t.Fatalf("pipeline=%v: checkpointed head state differs from the served final state", pipeline)
	}
	if snap.Round != rounds {
		t.Fatalf("pipeline=%v: checkpoint head at round %d, want %d", pipeline, snap.Round, rounds)
	}
	return res.state, bed.srv.Reports(), reg
}

func equalStates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPipelinedMatchesSequential is the pipelining property test: with
// checkpoint writes overlapped into the next round's broadcast, the
// final model, every round report, and the checkpoint chain's head must
// be bit-identical to the sequential server — and the overlap histograms
// must prove the pipeline actually ran.
func TestPipelinedMatchesSequential(t *testing.T) {
	GuardTest(t, 10*time.Second)
	const (
		numClients = 16
		rounds     = 6
		dim        = 2048
	)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	dir := t.TempDir()

	seqFinal, seqReports, seqReg := pipelineRun(t, ctx, false, filepath.Join(dir, "seq.ckpt"), rounds, numClients, dim)
	pipFinal, pipReports, pipReg := pipelineRun(t, ctx, true, filepath.Join(dir, "pip.ckpt"), rounds, numClients, dim)

	if !equalStates(seqFinal, pipFinal) {
		t.Fatal("pipelined final state differs from sequential")
	}
	if len(seqReports) != len(pipReports) {
		t.Fatalf("report counts differ: %d vs %d", len(seqReports), len(pipReports))
	}
	for i := range seqReports {
		if s, p := reportSig(seqReports[i]), reportSig(pipReports[i]); s != p {
			t.Errorf("round %d reports differ:\n sequential %s\n pipelined  %s", i, s, p)
		}
	}

	var seqText, pipText strings.Builder
	if err := seqReg.WritePrometheus(&seqText); err != nil {
		t.Fatal(err)
	}
	if err := pipReg.WritePrometheus(&pipText); err != nil {
		t.Fatal(err)
	}
	// Both modes time the checkpoint write itself.
	if got := histCount(t, pipText.String(), "dinar_flnet_round_tail_seconds"); got < rounds {
		t.Errorf("pipelined run recorded %d tail observations, want >= %d", got, rounds)
	}
	if got := histCount(t, seqText.String(), "dinar_flnet_round_tail_seconds"); got < rounds {
		t.Errorf("sequential run recorded %d tail observations, want >= %d", got, rounds)
	}
	// Only the pipelined mode joins: every join measures the stall and
	// the overlap won against the broadcast.
	if got := histCount(t, pipText.String(), "dinar_flnet_pipeline_overlap_seconds"); got < rounds-1 {
		t.Errorf("pipelined run recorded %d overlap observations, want >= %d", got, rounds-1)
	}
	if got := histCount(t, seqText.String(), "dinar_flnet_pipeline_overlap_seconds"); got != 0 {
		t.Errorf("sequential run recorded %d overlap observations, want 0", got)
	}

	// The measured phase budget (recorded in EXPERIMENTS.md): how much
	// checkpoint-tail time the pipeline hid behind the next round, and how
	// long any join stalled when the write outlived the round.
	t.Logf("sequential: checkpoint tail %.3f ms total over %d rounds",
		1e3*histSum(t, seqText.String(), "dinar_flnet_round_tail_seconds"), rounds)
	t.Logf("pipelined:  checkpoint tail %.3f ms total, overlap won %.3f ms, join stalls %.3f ms",
		1e3*histSum(t, pipText.String(), "dinar_flnet_round_tail_seconds"),
		1e3*histSum(t, pipText.String(), "dinar_flnet_pipeline_overlap_seconds"),
		1e3*histSum(t, pipText.String(), "dinar_flnet_pipeline_stall_seconds"))
}

// TestPipelinedDrainResumeIdentity extends the identity across a mid-run
// drain: a pipelined federation drained mid-flight (its in-flight
// checkpoint write joined, never torn) and resumed — still pipelined —
// must reproduce the uninterrupted sequential run bit-for-bit, round
// reports included.
func TestPipelinedDrainResumeIdentity(t *testing.T) {
	GuardTest(t, 10*time.Second)
	const (
		numClients = 12
		rounds     = 8
		dim        = 512
	)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	dir := t.TempDir()

	refFinal, refReports, _ := pipelineRun(t, ctx, false, filepath.Join(dir, "ref.ckpt"), rounds, numClients, dim)
	want := make(map[int]string, rounds)
	for _, r := range refReports {
		want[r.Round] = reportSig(r)
	}

	newFleet := func() *fleetsim.Fleet {
		return &fleetsim.Fleet{
			N: numClients, Dim: dim, Seed: 77,
			// Think-time jitter paces rounds into the tens of
			// milliseconds so the drain lands mid-federation.
			DelaySeed: 13, MaxDelay: 30 * time.Millisecond,
			IOTimeout: 30 * time.Second,
		}
	}
	ckpt := filepath.Join(dir, "resume.ckpt")
	cfg := flnet.ServerConfig{
		NumClients:     numClients,
		Rounds:         rounds,
		InitialState:   make([]float64, dim),
		CheckpointPath: ckpt,
		Pipeline:       true,
		IOTimeout:      30 * time.Second,
	}
	first := newSampledBed(t, cfg, newFleet())
	firstStats, firstErr := first.start(ctx)
	waitCheckpointRound(t, first.srv, 2)
	if err := first.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-firstErr; !errors.Is(err, flnet.ErrDraining) {
		t.Fatalf("drained run returned %v, want ErrDraining", err)
	}
	<-firstStats
	got := make(map[int]string, rounds)
	for _, r := range first.srv.Reports() {
		got[r.Round] = reportSig(r)
	}

	second := newSampledBed(t, cfg, newFleet())
	if start := second.srv.StartRound(); start < 2 || start >= rounds {
		t.Fatalf("resumed at round %d, want a mid-federation resume in [2, %d)", start, rounds)
	}
	secondStats, secondErr := second.start(ctx)
	if err := <-secondErr; err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	<-secondStats
	for _, r := range second.srv.Reports() {
		got[r.Round] = reportSig(r)
	}

	finalSnap, _, err := checkpoint.LoadLatestValid(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStates(finalSnap.State, refFinal) {
		t.Fatal("drain+resume pipelined final state differs from uninterrupted sequential run")
	}
	for round := 0; round < rounds; round++ {
		g, ok := got[round]
		if !ok {
			t.Fatalf("round %d never completed across drain + resume", round)
		}
		if g != want[round] {
			t.Errorf("round %d reports diverge:\n uninterrupted %s\n drain+resume  %s", round, want[round], g)
		}
	}
}
