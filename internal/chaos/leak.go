package chaos

import (
	"fmt"
	"runtime"
	"time"
)

// LeakGuard snapshots the process goroutine count so a test can assert
// that everything it spawned — servers, clients, fault injectors — wound
// down. Goroutine counts are noisy while things shut down asynchronously,
// so Check polls until the count returns to the baseline or the deadline
// expires.
type LeakGuard struct {
	baseline int
}

// NewLeakGuard captures the current goroutine count as the baseline.
// Take it before starting any servers or clients.
func NewLeakGuard() *LeakGuard {
	return &LeakGuard{baseline: runtime.NumGoroutine()}
}

// Check polls for up to wait until the goroutine count is back at (or
// below) the baseline; on timeout it returns an error carrying a full
// stack dump of the leaked goroutines.
func (g *LeakGuard) Check(wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		n := runtime.NumGoroutine()
		if n <= g.baseline {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("chaos: %d goroutines above baseline after %s (baseline %d, now %d):\n%s",
				n-g.baseline, wait, g.baseline, n, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TB is the subset of testing.TB the guard helper needs (an interface so
// this package does not import testing into non-test binaries).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// GuardTest registers a cleanup that fails t if the goroutine count has
// not returned to the pre-test baseline within wait. Call it before the
// test spawns anything.
func GuardTest(t TB, wait time.Duration) {
	t.Helper()
	g := NewLeakGuard()
	t.Cleanup(func() {
		if err := g.Check(wait); err != nil {
			t.Errorf("goroutine leak: %v", err)
		}
	})
}
