package chaos

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/fleetsim"
	"repro/internal/flnet"
)

// sampledBed is one sampled in-memory federation: server + synthetic fleet
// over a fresh MemListener. run() drives both to completion.
type sampledBed struct {
	srv   *flnet.Server
	mem   *fleetsim.MemListener
	fleet *fleetsim.Fleet
}

func newSampledBed(t *testing.T, cfg flnet.ServerConfig, fleet *fleetsim.Fleet) *sampledBed {
	t.Helper()
	dim := len(cfg.InitialState)
	def := defense.NewNone()
	if err := def.Bind(fl.ModelInfo{NumParams: dim, NumState: dim}); err != nil {
		t.Fatal(err)
	}
	cfg.Defense = def
	mem := fleetsim.Listen(cfg.NumClients)
	cfg.Listener = mem
	srv, err := flnet.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Dial = mem.Dial
	return &sampledBed{srv: srv, mem: mem, fleet: fleet}
}

// start launches the fleet and the server; the returned channels deliver
// the fleet's stats and the server's (state, error) once each finishes.
func (b *sampledBed) start(ctx context.Context) (<-chan *fleetsim.Stats, <-chan error) {
	statsCh := make(chan *fleetsim.Stats, 1)
	errCh := make(chan error, 1)
	go func() { statsCh <- b.fleet.Run(ctx) }()
	go func() {
		_, err := b.srv.Run(ctx)
		errCh <- err
	}()
	return statsCh, errCh
}

// TestSampledCohortResumeIdentity is the crash/resume half of the sampling
// property test: the cohort draw is a pure function of (seed, round,
// membership), so a federation drained mid-run and resumed from its
// checkpoint — with the sampling seed left unset, exercising checkpoint
// seed adoption — must draw bit-identical cohorts round for round with an
// uninterrupted federation at the same seed.
func TestSampledCohortResumeIdentity(t *testing.T) {
	GuardTest(t, 10*time.Second)
	const (
		numClients = 24
		sampleSize = 8
		rounds     = 8
		dim        = 16
		seed       = 99
	)
	base := func() flnet.ServerConfig {
		return flnet.ServerConfig{
			NumClients:   numClients,
			MinClients:   sampleSize,
			SampleSize:   sampleSize,
			SampleSeed:   seed,
			Rounds:       rounds,
			InitialState: make([]float64, dim),
			IOTimeout:    30 * time.Second,
		}
	}
	// The think-time jitter paces rounds to tens of milliseconds so the
	// drain below reliably lands mid-federation instead of after it.
	newFleet := func() *fleetsim.Fleet {
		return &fleetsim.Fleet{
			N: numClients, Dim: dim, Seed: 23,
			DelaySeed: 31, MaxDelay: 30 * time.Millisecond,
			IOTimeout: 30 * time.Second,
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Reference: one uninterrupted federation.
	ref := newSampledBed(t, base(), newFleet())
	refStats, refErr := ref.start(ctx)
	if err := <-refErr; err != nil {
		t.Fatalf("reference run: %v", err)
	}
	<-refStats
	want := make(map[int][]int, rounds)
	for _, r := range ref.srv.Reports() {
		want[r.Round] = r.Sampled
	}
	if len(want) != rounds {
		t.Fatalf("reference run produced %d reports, want %d", len(want), rounds)
	}

	// Interrupted: same config plus a checkpoint; drain once two rounds
	// are durably recorded.
	ckpt := filepath.Join(t.TempDir(), "global.ckpt")
	cfg := base()
	cfg.CheckpointPath = ckpt
	first := newSampledBed(t, cfg, newFleet())
	firstStats, firstErr := first.start(ctx)
	waitCheckpointRound(t, first.srv, 2)
	if err := first.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-firstErr; !errors.Is(err, flnet.ErrDraining) {
		t.Fatalf("drained run returned %v, want ErrDraining", err)
	}
	<-firstStats
	got := make(map[int][]int, rounds)
	for _, r := range first.srv.Reports() {
		got[r.Round] = r.Sampled
	}

	// Resume: SampleSeed deliberately unset — the server must adopt the
	// checkpointed seed, or every remaining cohort would silently differ.
	cfg = base()
	cfg.CheckpointPath = ckpt
	cfg.SampleSeed = 0
	second := newSampledBed(t, cfg, newFleet())
	start := second.srv.StartRound()
	if start < 2 || start >= rounds {
		t.Fatalf("resumed at round %d, want a mid-federation resume in [2, %d)", start, rounds)
	}
	secondStats, secondErr := second.start(ctx)
	if err := <-secondErr; err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	<-secondStats
	for _, r := range second.srv.Reports() {
		got[r.Round] = r.Sampled
	}

	for round := 0; round < rounds; round++ {
		w, g := want[round], got[round]
		if g == nil {
			t.Fatalf("round %d never completed across drain + resume", round)
		}
		if len(w) != len(g) {
			t.Fatalf("round %d: cohort sizes differ: %v vs %v", round, w, g)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("round %d: cohorts diverge at position %d: uninterrupted %v, drain+resume %v",
					round, i, w, g)
			}
		}
	}
}

// TestQuarantinedClientNeverResampled is the quarantine half of the
// sampling property test: a client struck off by the Byzantine screen must
// never appear in a later round's cohort while its quarantine lasts. The
// poisoner is chosen as the round-0 draw's first pick, so it is sampled
// exactly once — the round that earns its strike — and the federation
// still completes every round on the quorum fallback.
func TestQuarantinedClientNeverResampled(t *testing.T) {
	GuardTest(t, 10*time.Second)
	const (
		numClients = 12
		sampleSize = 8
		rounds     = 6
		dim        = 8
		seed       = 7
	)
	ids := make([]int, numClients)
	for i := range ids {
		ids[i] = i
	}
	poisoner := flnet.SampleOrder(seed, 0, ids)[0]

	bed := newSampledBed(t, flnet.ServerConfig{
		NumClients:   numClients,
		MinClients:   sampleSize - 2,
		SampleSize:   sampleSize,
		SampleSeed:   seed,
		Rounds:       rounds,
		InitialState: make([]float64, dim),
		IOTimeout:    30 * time.Second,
		// One strike (the default) quarantines; the penalty outlasts the
		// whole federation so any reappearance is a property violation.
		Screen: fl.ScreenConfig{QuarantineRounds: 100},
	}, &fleetsim.Fleet{
		N: numClients, Dim: dim, Seed: 5,
		IOTimeout: 30 * time.Second,
		Mutate: func(id, round int, state []float64) {
			if id == poisoner {
				state[0] = math.NaN()
			}
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	statsCh, errCh := bed.start(ctx)
	if err := <-errCh; err != nil {
		t.Fatalf("server run: %v", err)
	}
	<-statsCh

	final := bed.srv.Reports()
	if len(final) != rounds {
		t.Fatalf("%d round reports, want %d", len(final), rounds)
	}
	struck := -1
	for _, r := range final {
		for _, id := range r.Sampled {
			if id != poisoner {
				continue
			}
			if struck >= 0 {
				t.Fatalf("client %d sampled in round %d after its round-%d strike", poisoner, r.Round, struck)
			}
			struck = r.Round
		}
		for _, id := range r.Participants {
			if id == poisoner && r.Round > struck && struck >= 0 {
				t.Fatalf("quarantined client %d aggregated in round %d", poisoner, r.Round)
			}
		}
	}
	if struck != 0 {
		t.Fatalf("poisoner %d heads the round-0 draw by construction, but was first sampled in round %d", poisoner, struck)
	}
}
