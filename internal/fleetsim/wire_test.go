package fleetsim

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/flnet"
)

// wireServerConfig builds the standard config the wire tests drive: a
// streaming sampled-free federation with the codec knobs passed through.
func wireServerConfig(numClients, rounds, dim int, ln *MemListener) flnet.ServerConfig {
	def := defense.NewNone()
	if err := def.Bind(fl.ModelInfo{NumParams: dim, NumState: dim}); err != nil {
		panic(err)
	}
	return flnet.ServerConfig{
		NumClients:   numClients,
		Rounds:       rounds,
		Defense:      def,
		InitialState: make([]float64, dim),
		Listener:     ln,
		Streaming:    true,
		IOTimeout:    20 * time.Second,
	}
}

// runWireFederation drives one fleet/server pair to completion and returns
// the final state plus fleet stats.
func runWireFederation(t *testing.T, cfg flnet.ServerConfig, fleet *Fleet) ([]float64, *Stats) {
	t.Helper()
	srv, err := flnet.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	statsCh := make(chan *Stats, 1)
	go func() { statsCh <- fleet.Run(ctx) }()
	final, err := srv.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stats := <-statsCh
	if got := stats.Done.Load(); got != int64(fleet.N) {
		t.Fatalf("%d/%d clients received the final model (gave up %d)", got, fleet.N, stats.GaveUp.Load())
	}
	return final, stats
}

// TestWireNegotiationMatrix is the cross-version acceptance matrix: a v3
// server offering the full codec stack must complete federations with v3
// full-capability clients, with capability-less v3 clients, and with
// plain-gob v2 peers that predate the binary format entirely — and the
// negotiated label must show on /healthz.
func TestWireNegotiationMatrix(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	const (
		numClients = 8
		rounds     = 3
		dim        = 64
	)
	cases := []struct {
		name      string
		caps      uint32
		version   int
		wantLabel string
	}{
		{"v3 full codecs", flnet.ClientCaps, 0, "binary+flate+int8+topk+delta"},
		{"v3 binary only", flnet.CapBinary, 0, "binary+flate+int8+topk+delta"},
		{"v2 gob peer", 0, flnet.MinProtocolVersion, "binary+flate+int8+topk+delta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln := Listen(numClients)
			cfg := wireServerConfig(numClients, rounds, dim, ln)
			cfg.Wire = "binary"
			cfg.Compress = true
			cfg.Quantize = "int8"
			cfg.TopK = 0.5
			cfg.Delta = true
			cfg.QuantSeed = 5
			srv, err := flnet.NewServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := srv.Health().Wire; got != tc.wantLabel {
				t.Fatalf("Health().Wire = %q, want %q", got, tc.wantLabel)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			fleet := &Fleet{
				N: numClients, Dim: dim, Seed: 21,
				Caps: tc.caps, Version: tc.version,
				Dial: ln.Dial, IOTimeout: 20 * time.Second,
			}
			statsCh := make(chan *Stats, 1)
			go func() { statsCh <- fleet.Run(ctx) }()
			final, err := srv.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(final) != dim {
				t.Fatalf("final state has %d values, want %d", len(final), dim)
			}
			stats := <-statsCh
			if got := stats.Done.Load(); got != numClients {
				t.Fatalf("%d/%d clients received the final model (gave up %d)", got, numClients, stats.GaveUp.Load())
			}
			if got := stats.Updates.Load(); got != numClients*rounds {
				t.Fatalf("fleet wrote %d updates, want %d", got, numClients*rounds)
			}
		})
	}
}

// TestWireUnsupportedVersionRejected pins the version floor: a protocol-v1
// hello must be turned away with a version error, not half-served.
func TestWireUnsupportedVersionRejected(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	const numClients = 2
	ln := Listen(numClients)
	cfg := wireServerConfig(numClients, 1, 16, ln)
	cfg.MinClients = numClients
	srv, err := flnet.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srvDone := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		srvDone <- err
	}()

	old := &Fleet{N: 1, Dim: 16, Seed: 1, Version: flnet.MinProtocolVersion - 1, MaxRetries: 1,
		Dial: ln.Dial, IOTimeout: 5 * time.Second}
	stats := old.Run(ctx)
	if stats.Done.Load() != 0 || stats.GaveUp.Load() != 1 {
		t.Fatalf("v1 client outcome done=%d gaveUp=%d, want a rejection", stats.Done.Load(), stats.GaveUp.Load())
	}
	cancel()
	<-srvDone
}

// TestWireBytesReduction is the tentpole's acceptance criterion: with
// compression, int8 quantization, and delta broadcasts negotiated, the
// bytes moved per federation round must drop at least 4x against the gob
// transport at the same scale.
func TestWireBytesReduction(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	const (
		numClients = 16
		rounds     = 8
		dim        = 2048
	)
	run := func(coded bool) int64 {
		ln := Listen(numClients)
		cfg := wireServerConfig(numClients, rounds, dim, ln)
		fleet := &Fleet{N: numClients, Dim: dim, Seed: 9, Dial: ln.Dial, IOTimeout: 20 * time.Second}
		if coded {
			cfg.Wire = "binary"
			cfg.Compress = true
			cfg.Quantize = "int8"
			cfg.Delta = true
			cfg.QuantSeed = 3
			fleet.Caps = flnet.ClientCaps
		} else {
			cfg.Wire = "gob"
		}
		// Both ends share the in-process counters, so the tx delta alone
		// counts every frame exactly once.
		txBefore, _ := flnet.WireBytesTotals()
		runWireFederation(t, cfg, fleet)
		txAfter, _ := flnet.WireBytesTotals()
		return txAfter - txBefore
	}

	gobBytes := run(false)
	codedBytes := run(true)
	t.Logf("gob: %d bytes, coded: %d bytes (%.1fx reduction over %d rounds)",
		gobBytes, codedBytes, float64(gobBytes)/float64(codedBytes), rounds)
	if codedBytes <= 0 || gobBytes < 4*codedBytes {
		t.Fatalf("coded transport moved %d bytes vs %d gob; want at least a 4x reduction", codedBytes, gobBytes)
	}
}

// TestWireQuantSeedCheckpointResume proves the quantizer seed rides the
// checkpoint chain: a resumed server must adopt the recorded seed when the
// config leaves it unset, must refuse a conflicting one, and must finish
// the remaining rounds with codecs on.
func TestWireQuantSeedCheckpointResume(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	const (
		numClients = 6
		dim        = 48
		seed       = 5
	)
	path := filepath.Join(t.TempDir(), "wire.ckpt")

	ln := Listen(numClients)
	cfg := wireServerConfig(numClients, 2, dim, ln)
	cfg.Wire = "binary"
	cfg.Compress = true
	cfg.Quantize = "int8"
	cfg.Delta = true
	cfg.QuantSeed = seed
	cfg.CheckpointPath = path
	fleet := &Fleet{N: numClients, Dim: dim, Seed: 31, Caps: flnet.ClientCaps, Dial: ln.Dial, IOTimeout: 20 * time.Second}
	runWireFederation(t, cfg, fleet)

	snap, _, err := checkpoint.LoadLatestValid(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Wire == nil {
		t.Fatal("checkpoint carries no wire state")
	}
	if snap.Wire.QuantSeed != seed || snap.Wire.Quantize != "int8" || !snap.Wire.Compress || !snap.Wire.Delta {
		t.Fatalf("checkpoint wire state = %+v", *snap.Wire)
	}
	if snap.Wire.BcastRound < 0 || len(snap.Wire.Bcast) != dim {
		t.Fatalf("checkpoint broadcast anchor = round %d, %d values", snap.Wire.BcastRound, len(snap.Wire.Bcast))
	}

	// A conflicting seed must be refused before any client connects.
	conflict := wireServerConfig(numClients, 4, dim, Listen(numClients))
	conflict.Wire = "binary"
	conflict.Quantize = "int8"
	conflict.QuantSeed = seed + 1
	conflict.CheckpointPath = path
	if _, err := flnet.NewServer(conflict); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("conflicting quant seed accepted: %v", err)
	}

	// Seed left unset: the resumed server adopts the recorded one and the
	// federation completes its remaining rounds quantized.
	ln2 := Listen(numClients)
	resume := wireServerConfig(numClients, 4, dim, ln2)
	resume.Wire = "binary"
	resume.Compress = true
	resume.Quantize = "int8"
	resume.Delta = true
	resume.QuantSeed = 0
	resume.CheckpointPath = path
	srv, err := flnet.NewServer(resume)
	if err != nil {
		t.Fatal(err)
	}
	if srv.StartRound() != 2 {
		t.Fatalf("resumed at round %d, want 2", srv.StartRound())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fleet2 := &Fleet{N: numClients, Dim: dim, Seed: 31, Caps: flnet.ClientCaps, Dial: ln2.Dial, IOTimeout: 20 * time.Second}
	statsCh := make(chan *Stats, 1)
	go func() { statsCh <- fleet2.Run(ctx) }()
	final, err := srv.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != dim {
		t.Fatalf("final state has %d values, want %d", len(final), dim)
	}
	if stats := <-statsCh; stats.Done.Load() != numClients {
		t.Fatalf("%d/%d clients finished the resumed leg", stats.Done.Load(), numClients)
	}
}
