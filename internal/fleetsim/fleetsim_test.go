package fleetsim

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/flnet"
)

func TestMemListenerDialAccept(t *testing.T) {
	ln := Listen(4)
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Dial()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		_, err = conn.Write([]byte("hi"))
		done <- err
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 2)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hi" {
		t.Fatalf("read %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMemListenerDeadline(t *testing.T) {
	ln := Listen(1)
	defer ln.Close()

	// An already-expired deadline fails immediately with a timeout
	// net.Error, like a *net.TCPListener.
	ln.SetDeadline(time.Now().Add(-time.Second))
	_, err := ln.Accept()
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}

	// Shortening the deadline must wake a Accept already blocked on the
	// old (infinite) one — flnet's drain path depends on this.
	ln.SetDeadline(time.Time{})
	errCh := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	ln.SetDeadline(time.Now())
	select {
	case err := <-errCh:
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("want timeout net.Error, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not wake on SetDeadline")
	}

	ln.Close()
	if _, err := ln.Accept(); !errors.Is(err, ErrListenerClosed) {
		t.Fatalf("want ErrListenerClosed, got %v", err)
	}
	if _, err := ln.Dial(); !errors.Is(err, ErrListenerClosed) {
		t.Fatalf("want ErrListenerClosed after close, got %v", err)
	}
}

func TestSynthStateDeterministic(t *testing.T) {
	a := SynthState(7, 3, 2, 64, nil)
	b := SynthState(7, 3, 2, 64, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coordinate %d differs: %v vs %v", i, a[i], b[i])
		}
		if a[i] < -1 || a[i] >= 1 {
			t.Fatalf("coordinate %d out of [-1,1): %v", i, a[i])
		}
	}
	c := SynthState(7, 3, 3, 64, nil)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("round 2 and round 3 states are identical")
	}
}

// TestFleetFederation drives a real flnet server with a simulated fleet
// over the in-memory listener: every client must finish with the final
// model and every round must aggregate the full cohort.
func TestFleetFederation(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	const (
		numClients = 16
		rounds     = 3
		dim        = 32
	)
	def := defense.NewNone()
	if err := def.Bind(fl.ModelInfo{NumParams: dim, NumState: dim}); err != nil {
		t.Fatal(err)
	}
	ln := Listen(numClients)
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClients:   numClients,
		Rounds:       rounds,
		Defense:      def,
		InitialState: make([]float64, dim),
		Listener:     ln,
		IOTimeout:    20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fleet := &Fleet{N: numClients, Dim: dim, Seed: 11, Dial: ln.Dial, IOTimeout: 20 * time.Second}
	statsCh := make(chan *Stats, 1)
	go func() { statsCh <- fleet.Run(ctx) }()

	final, err := srv.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != dim {
		t.Fatalf("final state has %d values, want %d", len(final), dim)
	}
	stats := <-statsCh
	if got := stats.Done.Load(); got != numClients {
		t.Fatalf("%d/%d clients received the final model (gave up %d)", got, numClients, stats.GaveUp.Load())
	}
	if got := stats.Updates.Load(); got != numClients*rounds {
		t.Fatalf("fleet wrote %d updates, want %d", got, numClients*rounds)
	}
}
