package fleetsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flnet"
)

// mix64 is the SplitMix64 finalizer; with a sequential counter input it
// yields a high-quality deterministic stream, which is all the synthetic
// fleet needs (values must be identical run-to-run, not cryptographic).
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SynthState fills dst with the deterministic synthetic update a simulated
// client uploads: coordinate i of client id at round is a pure function of
// (seed, id, round, i) mapped into [-1, 1). Two runs with the same seed
// therefore produce bit-identical update sets regardless of timing, which
// is what lets the soak compare streaming against materialized aggregation
// for exact equality.
func SynthState(seed int64, id, round, dim int, dst []float64) []float64 {
	if cap(dst) < dim {
		dst = make([]float64, dim)
	}
	dst = dst[:dim]
	base := mix64(uint64(seed)) ^ mix64(uint64(id)<<20|uint64(round)+0x5bf0_3635)
	for i := range dst {
		z := mix64(base + uint64(i))
		dst[i] = float64(z>>11)/float64(1<<53)*2 - 1
	}
	return dst
}

// Stats aggregates the fleet's outcomes (atomic: clients update them
// concurrently).
type Stats struct {
	// Done counts clients that received the final model broadcast.
	Done atomic.Int64
	// GaveUp counts clients that exhausted their redial budget.
	GaveUp atomic.Int64
	// Rejoins counts successful re-registrations after a client's first.
	Rejoins atomic.Int64
	// Partitions counts global broadcasts deliberately dropped by the
	// Partition hook (each costs the server one eviction + replacement).
	Partitions atomic.Int64
	// Updates counts update frames written in full.
	Updates atomic.Int64
}

// Fleet drives N simulated clients against an flnet server. Each client is
// one goroutine speaking the raw wire protocol — no trainer, no dataset,
// no defense — uploading SynthState vectors, so 10k of them fit in one
// test process and the uploaded bytes are a pure function of the seed.
type Fleet struct {
	// N is the number of clients; ids are 0..N-1 (the server requires ids
	// in [0, NumClients)).
	N int
	// Dim is the state-vector length, matching the server's InitialState.
	Dim int
	// Seed derives every client's synthetic updates via SynthState.
	Seed int64
	// DelaySeed, when non-zero, adds a deterministic per-(id, round) think
	// delay in [0, MaxDelay) before each upload. Two runs with different
	// DelaySeeds deliver the same updates in different arrival orders —
	// exactly the perturbation the streaming-vs-materialized identity soak
	// needs.
	DelaySeed int64
	// MaxDelay bounds the think delay (default 2ms when DelaySeed is set).
	MaxDelay time.Duration
	// Weight returns a client's NumSamples (nil means 1 + id%7, so
	// weighted averaging is exercised).
	Weight func(id int) int
	// Partition, when non-nil and true for (id, round), makes the client
	// drop the connection on receiving that round's global instead of
	// replying — a mid-round network partition. The client redials and
	// re-registers afterwards.
	Partition func(id, round int) bool
	// Mutate, when non-nil, may rewrite the synthetic state before upload —
	// tests use it to turn a client into a poisoner (NaN payloads) and
	// watch the server's screen quarantine it.
	Mutate func(id, round int, state []float64)
	// Dial opens a connection to the server (typically MemListener.Dial).
	Dial func() (net.Conn, error)
	// IOTimeout bounds each read/write (default 2 minutes — non-sampled
	// clients legitimately sit in a read for many rounds).
	IOTimeout time.Duration
	// MaxRetries bounds consecutive redials that make no progress
	// (default 8).
	MaxRetries int
	// Caps is the wire capability mask each client advertises in its Hello
	// (e.g. flnet.ClientCaps). 0 means a legacy gob session — the default,
	// so existing soaks keep measuring the gob transport unchanged.
	Caps uint32
	// Version overrides the protocol version sent in Hello frames (0 means
	// flnet.ProtocolVersion) — negotiation tests use it to present an old
	// peer to a new server.
	Version int
	// Job names the federation job each Hello asks for — the service-mode
	// front door routes the connection by it. Empty targets a
	// single-federation server directly.
	Job string
}

// anchors tracks the broadcasts a simulated client holds, mirroring the
// real client's anchor discipline: pend is the last received broadcast,
// and the stable anchor only advances once the round's update has been
// written in full (so Hello's LastRound never promises a state the client
// might not hold).
type anchors struct {
	round     int
	state     []float64
	pendRound int
	pendState []float64
}

func (a *anchors) base(round int) []float64 {
	if round == a.pendRound && a.pendState != nil {
		return a.pendState
	}
	if round == a.round && a.state != nil {
		return a.state
	}
	return nil
}

func (a *anchors) received(round int, state []float64) {
	a.pendRound = round
	a.pendState = append(a.pendState[:0], state...)
}

func (a *anchors) completed(round int) {
	if a.pendRound != round {
		return
	}
	a.round = round
	a.state, a.pendState = a.pendState, a.state
	a.pendRound = -1
}

// errPartitioned marks a deliberate partition-induced disconnect; it does
// not consume the retry budget.
var errPartitioned = errors.New("fleetsim: partitioned")

// drainNotice carries the server-suggested back-off from a drain frame.
type drainNotice struct{ retryAfter time.Duration }

func (d drainNotice) Error() string { return "fleetsim: server draining" }

// Run spawns the N client goroutines and blocks until every one has
// finished (final model received, retry budget exhausted, or ctx
// canceled). The returned Stats are complete once Run returns.
func (f *Fleet) Run(ctx context.Context) *Stats {
	if f.IOTimeout <= 0 {
		f.IOTimeout = 2 * time.Minute
	}
	if f.MaxRetries <= 0 {
		f.MaxRetries = 8
	}
	if f.MaxDelay <= 0 {
		f.MaxDelay = 2 * time.Millisecond
	}
	stats := &Stats{}
	// One closer goroutine (not one per client) tears down every live
	// connection on ctx cancel, so clients can use long read deadlines
	// without making shutdown wait them out.
	conns := make([]net.Conn, f.N)
	var connMu sync.Mutex
	closerDone := make(chan struct{})
	fleetDone := make(chan struct{})
	go func() {
		defer close(closerDone)
		select {
		case <-ctx.Done():
			connMu.Lock()
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
			connMu.Unlock()
		case <-fleetDone:
		}
	}()

	var wg sync.WaitGroup
	for id := 0; id < f.N; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			f.runClient(ctx, id, stats, func(c net.Conn) {
				connMu.Lock()
				conns[id] = c
				connMu.Unlock()
			})
		}(id)
	}
	wg.Wait()
	close(fleetDone)
	<-closerDone
	return stats
}

// runClient is one simulated client's lifetime: dial, register, answer
// globals until Done, redialing after partitions and faults.
func (f *Fleet) runClient(ctx context.Context, id int, stats *Stats, track func(net.Conn)) {
	lastRound := -1
	retries := 0
	sessions := 0
	buf := make([]float64, 0, f.Dim)
	anch := &anchors{round: -1, pendRound: -1}
	for ctx.Err() == nil {
		conn, err := f.Dial()
		if err != nil {
			// Listener closed: the federation is over and this client was
			// not live for the final broadcast (evicted and not resampled).
			return
		}
		track(conn)
		before := lastRound
		sessions++
		if sessions > 1 {
			stats.Rejoins.Add(1)
		}
		err = f.session(ctx, id, conn, &lastRound, &buf, anch, stats)
		conn.Close()
		track(nil)
		switch {
		case err == nil:
			stats.Done.Add(1)
			return
		case ctx.Err() != nil:
			return
		case errors.Is(err, errPartitioned):
			// Deliberate fault: give the server a beat to evict the dead
			// session before re-registering under the same id.
			retries = 0
			sleepCtx(ctx, time.Duration(1+mix64(uint64(id)<<8|uint64(sessions))%4)*time.Millisecond)
			continue
		}
		var drain drainNotice
		if errors.As(err, &drain) {
			retryAfter := drain.retryAfter
			if retryAfter <= 0 {
				retryAfter = 50 * time.Millisecond
			}
			sleepCtx(ctx, retryAfter)
			continue
		}
		if lastRound > before {
			retries = 0 // the session made progress; restart the budget
		}
		retries++
		if retries > f.MaxRetries {
			stats.GaveUp.Add(1)
			return
		}
		sleepCtx(ctx, time.Duration(retries)*time.Duration(1+mix64(uint64(id)^uint64(retries)<<13)%5)*time.Millisecond)
	}
}

// session runs one connection's worth of protocol: hello, then globals
// until Done. A nil return means the final model arrived.
func (f *Fleet) session(ctx context.Context, id int, conn net.Conn, lastRound *int, buf *[]float64, anch *anchors, stats *Stats) error {
	version := f.Version
	if version == 0 {
		version = flnet.ProtocolVersion
	}
	conn.SetWriteDeadline(time.Now().Add(f.IOTimeout))
	err := flnet.WriteMessage(conn, &flnet.Message{
		Kind:      flnet.KindHello,
		ClientID:  id,
		Version:   version,
		LastRound: *lastRound,
		WireCaps:  f.Caps,
		Job:       f.Job,
	})
	if err != nil {
		return err
	}
	var codec *flnet.Codec
	var msg flnet.Message
	for {
		conn.SetReadDeadline(time.Now().Add(f.IOTimeout))
		if err := flnet.ReadMessageWith(conn, &msg, codec); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		switch msg.Kind {
		case flnet.KindWire:
			if msg.WireCaps&^f.Caps != 0 {
				return fmt.Errorf("fleetsim: client %d: server negotiated unadvertised capabilities %#x", id, msg.WireCaps)
			}
			codec = flnet.NewCodec(msg.WireCaps, msg.QuantSeed, msg.TopK, anch.base)
		case flnet.KindGlobal:
			if codec.Binary() {
				anch.received(msg.Round, msg.State)
			}
			if f.Partition != nil && f.Partition(id, msg.Round) {
				stats.Partitions.Add(1)
				return errPartitioned
			}
			if f.DelaySeed != 0 && f.MaxDelay > 0 {
				d := time.Duration(mix64(uint64(f.DelaySeed)^uint64(id)<<22^uint64(msg.Round))) % f.MaxDelay
				sleepCtx(ctx, d)
			}
			weight := 1 + id%7
			if f.Weight != nil {
				weight = f.Weight(id)
			}
			*buf = SynthState(f.Seed, id, msg.Round, f.Dim, *buf)
			if f.Mutate != nil {
				f.Mutate(id, msg.Round, *buf)
			}
			conn.SetWriteDeadline(time.Now().Add(f.IOTimeout))
			err := flnet.WriteMessageWith(conn, &flnet.Message{
				Kind:       flnet.KindUpdate,
				ClientID:   id,
				Round:      msg.Round,
				State:      *buf,
				NumSamples: weight,
			}, codec)
			if err != nil {
				return err
			}
			stats.Updates.Add(1)
			*lastRound = msg.Round
			anch.completed(msg.Round)
		case flnet.KindDone:
			return nil
		case flnet.KindDrain:
			return drainNotice{retryAfter: time.Duration(msg.RetryAfterMs) * time.Millisecond}
		case flnet.KindError:
			return fmt.Errorf("fleetsim: client %d rejected: %s", id, msg.Err)
		default:
			return fmt.Errorf("fleetsim: client %d: unexpected %v frame", id, msg.Kind)
		}
	}
}

// sleepCtx sleeps for d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}
