// Package fleetsim provides the scale harness for soak tests: an
// in-memory net.Listener that needs no file descriptors (10k TCP
// connections would blow through the container's fd limit) and a fleet of
// lightweight simulated clients that speak the raw flnet wire protocol
// with deterministic synthetic updates, so a single test process can
// drive a server through thousands of clients and still assert
// bit-exact results.
package fleetsim

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrListenerClosed is returned by Accept and Dial after Close.
var ErrListenerClosed = errors.New("fleetsim: listener closed")

// timeoutError satisfies net.Error with Timeout() true, which flnet's
// registration loop uses to distinguish a deadline expiry from a fatal
// accept failure.
type timeoutError struct{}

func (timeoutError) Error() string   { return "fleetsim: accept deadline exceeded" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "fleetsim" }

// MemListener is an in-memory net.Listener: Dial hands the server half of
// a net.Pipe to Accept and returns the client half. net.Pipe connections
// support read/write deadlines, so flnet's IO timeouts work unchanged;
// nothing touches the OS socket layer, so a 10k-client fleet costs zero
// file descriptors.
type MemListener struct {
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once

	mu       sync.Mutex
	deadline time.Time
	dlCh     chan struct{} // closed and replaced on every SetDeadline
}

var _ net.Listener = (*MemListener)(nil)

// Listen returns a MemListener whose Dial queues up to backlog pending
// connections before blocking (minimum 1).
func Listen(backlog int) *MemListener {
	if backlog < 1 {
		backlog = 1
	}
	return &MemListener{
		conns:  make(chan net.Conn, backlog),
		closed: make(chan struct{}),
		dlCh:   make(chan struct{}),
	}
}

// Dial connects a new simulated client: the server half is queued for
// Accept, the client half is returned. Blocks when the backlog is full.
func (l *MemListener) Dial() (net.Conn, error) {
	select {
	case <-l.closed:
		return nil, ErrListenerClosed
	default:
	}
	server, client := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.closed:
		server.Close()
		client.Close()
		return nil, ErrListenerClosed
	}
}

// Accept implements net.Listener, honoring the deadline set via
// SetDeadline (expiry returns a net.Error with Timeout() true, like a
// *net.TCPListener).
func (l *MemListener) Accept() (net.Conn, error) {
	for {
		// A closed listener wins over an expired deadline, matching the
		// error a *net.TCPListener reports after Close.
		select {
		case <-l.closed:
			return nil, ErrListenerClosed
		default:
		}
		l.mu.Lock()
		deadline := l.deadline
		changed := l.dlCh
		l.mu.Unlock()

		var timeout <-chan time.Time
		var timer *time.Timer
		if !deadline.IsZero() {
			wait := time.Until(deadline)
			if wait <= 0 {
				return nil, timeoutError{}
			}
			timer = time.NewTimer(wait)
			timeout = timer.C
		}
		select {
		case conn := <-l.conns:
			if timer != nil {
				timer.Stop()
			}
			return conn, nil
		case <-l.closed:
			if timer != nil {
				timer.Stop()
			}
			return nil, ErrListenerClosed
		case <-timeout:
			return nil, timeoutError{}
		case <-changed:
			// Deadline replaced (possibly with "now" to force a wakeup, as
			// flnet's drain path does on TCP listeners); recompute and wait
			// again.
			if timer != nil {
				timer.Stop()
			}
		}
	}
}

// SetDeadline implements the optional listener-deadline interface flnet's
// registration phase relies on. It wakes any blocked Accept so a shortened
// deadline takes effect immediately.
func (l *MemListener) SetDeadline(t time.Time) error {
	l.mu.Lock()
	l.deadline = t
	close(l.dlCh)
	l.dlCh = make(chan struct{})
	l.mu.Unlock()
	return nil
}

// Close implements net.Listener. Queued-but-unaccepted connections are
// closed so their dialers' reads fail fast instead of timing out.
func (l *MemListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	for {
		select {
		case conn := <-l.conns:
			conn.Close()
		default:
			return nil
		}
	}
}

// Addr implements net.Listener.
func (l *MemListener) Addr() net.Addr { return memAddr{} }
