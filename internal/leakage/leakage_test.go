package leakage

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// trainCentral overfits a model on ds with plain SGD.
func trainCentral(t *testing.T, m *nn.Model, ds *data.Dataset, epochs int, lr float64) {
	t.Helper()
	var loss nn.SoftmaxCrossEntropy
	params, grads := m.Params(), m.Grads()
	rng := rand.New(rand.NewSource(3))
	for e := 0; e < epochs; e++ {
		err := ds.Batches(32, rng, func(x *tensor.Tensor, y []int) error {
			out := m.Forward(x, true)
			res, err := loss.Eval(out, y)
			if err != nil {
				return err
			}
			m.Backward(res.Grad)
			for i, p := range params {
				pd, gd := p.Data(), grads[i].Data()
				for j := range pd {
					pd[j] -= lr * gd[j]
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func overfitSetup(t *testing.T) (*nn.Model, *data.Dataset, *data.Dataset) {
	t.Helper()
	spec, err := data.Lookup("purchase100")
	if err != nil {
		t.Fatal(err)
	}
	spec.Records = 400
	ds, err := data.Generate(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	members, nonMembers := ds.Split(0.5)
	m := model.FCNN6(spec.Features, spec.Classes, rand.New(rand.NewSource(1)))
	// Partial overfitting: with full overfitting every layer's member and
	// non-member gradient distributions become disjoint and the JS estimate
	// saturates at ln 2 for all layers, hiding the per-layer ordering.
	trainCentral(t, m, members, 6, 0.05)
	return m, members, nonMembers
}

func TestLayerDivergenceShape(t *testing.T) {
	m, members, nonMembers := overfitSetup(t)
	a := NewAnalyzer()
	div, err := a.LayerDivergence(m, members, nonMembers)
	if err != nil {
		t.Fatal(err)
	}
	if len(div) != m.NumLayers() {
		t.Fatalf("divergence for %d layers, want %d", len(div), m.NumLayers())
	}
	for l, d := range div {
		if math.IsNaN(d) || d < 0 || d > math.Log(2)+1e-9 {
			t.Fatalf("layer %d divergence %v outside [0, ln2]", l, d)
		}
	}
}

func TestTrainedModelLeaksMoreThanFresh(t *testing.T) {
	m, members, nonMembers := overfitSetup(t)
	a := NewAnalyzer()
	trainedDiv, err := a.LayerDivergence(m, members, nonMembers)
	if err != nil {
		t.Fatal(err)
	}
	fresh := model.FCNN6(members.Spec.Features, members.Spec.Classes, rand.New(rand.NewSource(9)))
	freshDiv, err := a.LayerDivergence(fresh, members, nonMembers)
	if err != nil {
		t.Fatal(err)
	}
	trainedMax, freshMax := max(trainedDiv), max(freshDiv)
	if trainedMax <= freshMax {
		t.Fatalf("trained max divergence %v should exceed fresh %v", trainedMax, freshMax)
	}
}

func TestMostSensitiveLayerIsLate(t *testing.T) {
	// The paper (§3) finds the penultimate layer leaks most; at minimum the
	// most sensitive layer of an overfit classifier must sit in the deeper
	// half of the network.
	m, members, nonMembers := overfitSetup(t)
	a := NewAnalyzer()
	div, err := a.LayerDivergence(m, members, nonMembers)
	if err != nil {
		t.Fatal(err)
	}
	p := MostSensitiveLayer(div)
	if p < m.NumLayers()/2 {
		t.Fatalf("most sensitive layer %d of %d is in the shallow half (div=%v)", p, m.NumLayers(), div)
	}
}

func TestMostSensitiveLayer(t *testing.T) {
	if got := MostSensitiveLayer([]float64{0.1, 0.5, 0.3}); got != 1 {
		t.Fatalf("argmax = %d", got)
	}
	if got := MostSensitiveLayer([]float64{0.2, 0.2}); got != 0 {
		t.Fatalf("tie argmax = %d", got)
	}
	if got := MostSensitiveLayer(nil); got != -1 {
		t.Fatalf("empty argmax = %d", got)
	}
}

func TestLayerDivergenceErrors(t *testing.T) {
	spec, _ := data.Lookup("purchase100")
	ds, _ := data.GenerateN(spec, 20, 1)
	m := model.FCNN6(spec.Features, spec.Classes, rand.New(rand.NewSource(1)))
	a := NewAnalyzer()
	empty := ds.Subset(nil)
	if _, err := a.LayerDivergence(m, empty, ds); err == nil {
		t.Fatal("accepted empty members")
	}
	if _, err := a.LayerDivergence(m, ds, empty); err == nil {
		t.Fatal("accepted empty non-members")
	}
}

func max(xs []float64) float64 {
	best := math.Inf(-1)
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
