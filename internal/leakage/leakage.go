// Package leakage implements the paper's layer-level privacy analysis
// (§3, Fig. 1, Fig. 4a and the client-side measurement of §4.1): for every
// logical model layer it measures the "generalization gap" — the
// Jensen–Shannon divergence between per-layer gradient distributions
// produced by member data and by non-member data. The layer with the highest
// divergence leaks the most membership information and is the one DINAR
// obfuscates.
//
// Two gradient statistics are supported:
//
//   - StatShape (default): per-batch RMS-normalized gradient entries, pooled
//     per layer. Normalizing per batch cancels the global loss-magnitude gap
//     (overfit members have uniformly tiny gradients) and isolates the
//     label- and sample-specific structure of each layer's gradient, which
//     concentrates in the deepest layers — the phenomenon behind the
//     paper's Fig. 1.
//   - StatNorm: per-batch per-layer gradient RMS norms. This is the raw
//     magnitude gap; with strongly overfit models it saturates at ln 2 for
//     every layer.
package leakage

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Statistic selects the per-layer gradient summary the divergence is
// computed over.
type Statistic int

// Supported statistics.
const (
	// StatShape pools RMS-normalized gradient entries per layer.
	StatShape Statistic = iota + 1
	// StatNorm collects per-batch gradient RMS norms per layer.
	StatNorm
)

// Analyzer measures per-layer membership leakage of a trained model.
type Analyzer struct {
	// Stat selects the gradient statistic (default StatShape).
	Stat Statistic
	// BatchSize is the gradient-probe batch size (small batches sharpen the
	// per-sample structure of the gradient signal; default 2 — with larger
	// probe batches the measured peak drifts from the penultimate layer
	// toward the classifier).
	BatchSize int
	// MaxBatches caps the number of probe batches per population (default
	// 64).
	MaxBatches int
	// Bins is the histogram resolution of the JS estimate (default 32).
	Bins int
	// EntriesPerBatch caps how many normalized gradient entries StatShape
	// samples per layer per batch (default 200).
	EntriesPerBatch int
}

// NewAnalyzer returns an analyzer with default settings.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		Stat:            StatShape,
		BatchSize:       2,
		MaxBatches:      64,
		Bins:            32,
		EntriesPerBatch: 200,
	}
}

// LayerDivergence returns, for each logical layer of m, the Jensen–Shannon
// divergence between member and non-member gradient distributions. Higher =
// more membership leakage.
func (a *Analyzer) LayerDivergence(m *nn.Model, members, nonMembers *data.Dataset) ([]float64, error) {
	if members.Len() == 0 || nonMembers.Len() == 0 {
		return nil, fmt.Errorf("leakage: empty member/non-member sets")
	}
	memberSamples, err := a.collect(m, members)
	if err != nil {
		return nil, err
	}
	nonSamples, err := a.collect(m, nonMembers)
	if err != nil {
		return nil, err
	}
	layers := m.NumLayers()
	out := make([]float64, layers)
	for l := 0; l < layers; l++ {
		js, err := metrics.JSDivergenceSamples(memberSamples[l], nonSamples[l], a.Bins)
		if err != nil {
			return nil, fmt.Errorf("leakage: layer %d: %w", l, err)
		}
		out[l] = js
	}
	return out, nil
}

// collect gathers the per-layer gradient statistic over probe batches of ds.
func (a *Analyzer) collect(m *nn.Model, ds *data.Dataset) ([][]float64, error) {
	var loss nn.SoftmaxCrossEntropy
	layers := m.NumLayers()
	samples := make([][]float64, layers)
	batches := 0
	err := ds.Batches(a.BatchSize, nil, func(x *tensor.Tensor, y []int) error {
		if batches >= a.MaxBatches {
			return nil
		}
		batches++
		out := m.Forward(x, true)
		res, lerr := loss.Eval(out, y)
		if lerr != nil {
			return lerr
		}
		m.ZeroGrads()
		m.Backward(res.Grad)
		for l, g := range m.LayerGradVectors() {
			rms := rmsOf(g)
			switch a.Stat {
			case StatNorm:
				samples[l] = append(samples[l], rms)
			default: // StatShape
				if rms == 0 {
					rms = 1e-12
				}
				step := len(g)/a.EntriesPerBatch + 1
				for i := 0; i < len(g); i += step {
					samples[l] = append(samples[l], g[i]/rms)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

func rmsOf(g []float64) float64 {
	if len(g) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range g {
		s += v * v
	}
	return math.Sqrt(s / float64(len(g)))
}

// MostSensitiveLayer returns the index of the maximum divergence (ties go to
// the earliest index) — each client's vote pᵢ in the §4.1 consensus.
func MostSensitiveLayer(divergences []float64) int {
	best, bestIdx := math.Inf(-1), -1
	for i, d := range divergences {
		if d > best {
			best, bestIdx = d, i
		}
	}
	return bestIdx
}
